type severity = Error | Warning

type diag = {
  d_code : string;
  d_severity : severity;
  d_subject : string;
  d_message : string;
  d_line : int option;
}

type task_spec = {
  ts_name : string;
  ts_compute : int;
  ts_release : int;
  ts_deadline : int;
  ts_proc : string;
  ts_demands : (string * int) list;
  ts_preemptive : bool;
  ts_period : int option;
  ts_line : int option;
}

type edge_spec = {
  es_src : string;
  es_dst : string;
  es_message : int;
  es_line : int option;
}

let errors diags = List.filter (fun d -> d.d_severity = Error) diags
let has_errors diags = List.exists (fun d -> d.d_severity = Error) diags

let to_string ?file d =
  let body = Printf.sprintf "%s %s: %s" d.d_code d.d_subject d.d_message in
  match (file, d.d_line) with
  | Some f, Some l -> Printf.sprintf "%s:%d: %s" f l body
  | Some f, None -> Printf.sprintf "%s: %s" f body
  | None, Some l -> Printf.sprintf "line %d: %s" l body
  | None, None -> body

let pp_diag ppf d = Format.pp_print_string ppf (to_string d)

(* Diagnostics are accumulated in pass order, then stably sorted by
   source line so the output reads like compiler errors; diagnostics
   without a line sink to the end. *)
let by_line diags =
  List.stable_sort
    (fun a b ->
      let key d = match d.d_line with Some l -> l | None -> max_int in
      compare (key a) (key b))
    diags

let spec_of_app app =
  let tasks =
    Array.to_list (App.tasks app)
    |> List.map (fun (t : Task.t) ->
           {
             ts_name = t.Task.name;
             ts_compute = t.Task.compute;
             ts_release = t.Task.release;
             ts_deadline = t.Task.deadline;
             ts_proc = t.Task.proc;
             ts_demands = t.Task.demands;
             ts_preemptive = t.Task.preemptive;
             ts_period = None;
             ts_line = None;
           })
  in
  let name i = (App.task app i).Task.name in
  let edges =
    Dag.fold_edges (App.graph app) ~init:[] ~f:(fun acc ~src ~dst m ->
        { es_src = name src; es_dst = name dst; es_message = m; es_line = None }
        :: acc)
    |> List.rev
  in
  (tasks, edges)

(* ---------------- spec-level checks ---------------- *)

let edge_subject e = Printf.sprintf "edge %s->%s" e.es_src e.es_dst

let check_task add (ts : task_spec) =
  let add ~code ~severity fmt =
    Printf.ksprintf
      (fun m -> add ~code ~severity ~subject:("task " ^ ts.ts_name) ~line:ts.ts_line m)
      fmt
  in
  if ts.ts_name = "" then add ~code:"E104" ~severity:Error "empty task name";
  if ts.ts_proc = "" then
    add ~code:"E104" ~severity:Error "empty processor type";
  if ts.ts_compute < 0 then
    add ~code:"E104" ~severity:Error "negative compute time %d" ts.ts_compute;
  if ts.ts_compute = 0 then
    add ~code:"W201" ~severity:Warning
      "zero-compute task (milestone): occupies no resource time";
  List.iter
    (fun (r, k) ->
      if k < 1 then
        add ~code:"E104" ~severity:Error "%d units of resource '%s'" k r)
    ts.ts_demands;
  match ts.ts_period with
  | None ->
      if ts.ts_release < 0 then
        add ~code:"E104" ~severity:Error "negative release time %d" ts.ts_release;
      if ts.ts_deadline < 0 then
        add ~code:"E104" ~severity:Error "negative deadline %d" ts.ts_deadline;
      if
        ts.ts_compute >= 0 && ts.ts_release >= 0 && ts.ts_deadline >= 0
        && ts.ts_release + ts.ts_compute > ts.ts_deadline
      then
        add ~code:"E102" ~severity:Error
          "window [%d, %d] cannot hold compute %d" ts.ts_release ts.ts_deadline
          ts.ts_compute
  | Some p ->
      if p <= 0 then add ~code:"E104" ~severity:Error "non-positive period %d" p;
      if ts.ts_deadline < 0 then
        add ~code:"E104" ~severity:Error "negative deadline %d" ts.ts_deadline;
      if p > 0 && (ts.ts_release < 0 || ts.ts_release >= p) then
        add ~code:"E104" ~severity:Error "offset %d outside [0, period %d)"
          ts.ts_release p;
      if ts.ts_compute >= 0 && ts.ts_deadline >= 0 && ts.ts_compute > ts.ts_deadline
      then
        add ~code:"E102" ~severity:Error
          "relative deadline %d cannot hold compute %d" ts.ts_deadline
          ts.ts_compute

(* Kahn's algorithm over the declared-name graph; whatever survives is
   (part of) a cycle, from which one concrete cycle is walked out for the
   message. *)
let check_cycles add tasks edges =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i ts ->
      if not (Hashtbl.mem index ts.ts_name) then Hashtbl.add index ts.ts_name i)
    tasks;
  let n = List.length tasks in
  let names = Array.make (max n 1) "" in
  List.iteri (fun i ts -> if i < n then names.(i) <- ts.ts_name) tasks;
  let succs = Array.make (max n 1) [] in
  let indeg = Array.make (max n 1) 0 in
  let seen = Hashtbl.create 16 in
  let usable =
    List.filter
      (fun e ->
        match (Hashtbl.find_opt index e.es_src, Hashtbl.find_opt index e.es_dst) with
        | Some s, Some d when s <> d ->
            if Hashtbl.mem seen (s, d) then false
            else begin
              Hashtbl.add seen (s, d) ();
              succs.(s) <- d :: succs.(s);
              indeg.(d) <- indeg.(d) + 1;
              true
            end
        | _ -> false)
      edges
  in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr removed;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d queue)
      succs.(v)
  done;
  if !removed < n then begin
    (* walk one cycle inside the residual graph *)
    let residual i = indeg.(i) > 0 in
    let start = ref 0 in
    for i = n - 1 downto 0 do
      if residual i then start := i
    done;
    let rec walk path v =
      if List.mem v path then
        (* drop the lead-in, keep the loop *)
        let rec cut = function
          | x :: _ as l when x = v -> l
          | _ :: rest -> cut rest
          | [] -> []
        in
        cut (List.rev (v :: path))
      else
        match List.find_opt residual succs.(v) with
        | Some next -> walk (v :: path) next
        | None -> List.rev (v :: path)
    in
    (* [walk] closes the loop by repeating the entry vertex; drop that
       tail so the pairing and rendering below close it exactly once. *)
    let cycle =
      match walk [] !start with
      | first :: _ :: _ as l when List.nth l (List.length l - 1) = first ->
          List.filteri (fun i _ -> i < List.length l - 1) l
      | l -> l
    in
    let cycle_names = List.map (fun i -> names.(i)) cycle in
    let line =
      (* earliest source line of an edge along the cycle *)
      let pairs =
        match cycle with
        | [] -> []
        | first :: _ ->
            let rec pair = function
              | a :: (b :: _ as rest) -> (names.(a), names.(b)) :: pair rest
              | [ last ] -> [ (names.(last), names.(first)) ]
              | [] -> []
            in
            pair cycle
      in
      List.filter_map
        (fun e ->
          if List.mem (e.es_src, e.es_dst) pairs then e.es_line else None)
        usable
      |> function [] -> None | lines -> Some (List.fold_left min max_int lines)
    in
    add ~code:"E101" ~severity:Error ~subject:"application" ~line
      (Printf.sprintf "precedence cycle: %s -> %s"
         (String.concat " -> " cycle_names)
         (match cycle_names with first :: _ -> first | [] -> "?"))
  end

let check_system add ~system tasks =
  let used = Hashtbl.create 16 in
  List.iter
    (fun ts ->
      Hashtbl.replace used ts.ts_proc ();
      List.iter (fun (r, _) -> Hashtbl.replace used r ()) ts.ts_demands)
    tasks;
  (match system with
  | System.Shared costs ->
      let declared r = List.mem_assoc r costs in
      List.iter
        (fun ts ->
          let add ~code fmt =
            Printf.ksprintf
              (fun m ->
                add ~code ~severity:Error ~subject:("task " ^ ts.ts_name)
                  ~line:ts.ts_line m)
              fmt
          in
          if ts.ts_proc <> "" && not (declared ts.ts_proc) then
            add ~code:"E103" "processor type '%s' has no cost in the shared model"
              ts.ts_proc;
          List.iter
            (fun (r, _) ->
              if not (declared r) then
                add ~code:"E103" "resource '%s' has no cost in the shared model" r)
            ts.ts_demands)
        tasks;
      List.iter
        (fun (r, _) ->
          if not (Hashtbl.mem used r) then
            add ~code:"W202" ~severity:Warning ~subject:("resource " ^ r)
              ~line:None "declared in the system model but used by no task")
        costs
  | System.Dedicated nts ->
      List.iter
        (fun ts ->
          let with_proc =
            List.filter
              (fun (nt : System.node_type) ->
                String.equal nt.System.nt_proc ts.ts_proc)
              nts
          in
          let hosts nt =
            List.for_all
              (fun (r, k) -> System.node_provides nt r >= k)
              ts.ts_demands
          in
          if ts.ts_proc <> "" && with_proc = [] then
            add ~code:"E103" ~severity:Error ~subject:("task " ^ ts.ts_name)
              ~line:ts.ts_line
              (Printf.sprintf "no node type provides processor '%s'" ts.ts_proc)
          else if
            ts.ts_proc <> ""
            && List.for_all (fun (_, k) -> k >= 1) ts.ts_demands
            && not (List.exists hosts with_proc)
          then
            add ~code:"E103" ~severity:Error ~subject:("task " ^ ts.ts_name)
              ~line:ts.ts_line
              (Printf.sprintf
                 "no node type with processor '%s' provides its resources (%s)"
                 ts.ts_proc
                 (String.concat ", "
                    (List.map
                       (fun (r, k) ->
                         if k = 1 then r else Printf.sprintf "%dx%s" k r)
                       ts.ts_demands))))
        tasks;
      let provided = Hashtbl.create 16 in
      List.iter
        (fun (nt : System.node_type) ->
          Hashtbl.replace provided nt.System.nt_proc ();
          List.iter (fun (r, _) -> Hashtbl.replace provided r ()) nt.System.nt_provides)
        nts;
      Hashtbl.fold (fun r () acc -> r :: acc) provided []
      |> List.sort String.compare
      |> List.iter (fun r ->
             if not (Hashtbl.mem used r) then
               add ~code:"W202" ~severity:Warning ~subject:("resource " ^ r)
                 ~line:None "provided by the node catalogue but used by no task"))

let check_spec ~system ~tasks ~edges =
  let acc = ref [] in
  let add ~code ~severity ~subject ?(line = None) message =
    acc :=
      { d_code = code; d_severity = severity; d_subject = subject;
        d_message = message; d_line = line }
      :: !acc
  in
  (* per-task quantity and window checks *)
  List.iter
    (fun ts ->
      check_task
        (fun ~code ~severity ~subject ~line m ->
          add ~code ~severity ~subject ~line m)
        ts)
    tasks;
  (* duplicate task names *)
  let first_decl = Hashtbl.create 16 in
  List.iter
    (fun ts ->
      match Hashtbl.find_opt first_decl ts.ts_name with
      | None -> Hashtbl.add first_decl ts.ts_name ts.ts_line
      | Some _ ->
          add ~code:"E105" ~severity:Error ~subject:("task " ^ ts.ts_name)
            ~line:ts.ts_line "duplicate task name")
    tasks;
  (* mixed periodic and one-shot *)
  let periodic, oneshot =
    List.partition (fun ts -> ts.ts_period <> None) tasks
  in
  if periodic <> [] && oneshot <> [] then
    add ~code:"E106" ~severity:Error ~subject:"application" ~line:None
      (Printf.sprintf
         "mixed periodic and one-shot tasks (%d periodic, %d one-shot)"
         (List.length periodic) (List.length oneshot));
  (* per-edge checks *)
  let seen_edges = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let add ~code ~severity fmt =
        Printf.ksprintf
          (fun m ->
            add ~code ~severity ~subject:(edge_subject e) ~line:e.es_line m)
          fmt
      in
      if e.es_message < 0 then
        add ~code:"E104" ~severity:Error "negative message size %d" e.es_message;
      List.iter
        (fun endpoint ->
          if not (Hashtbl.mem first_decl endpoint) then
            add ~code:"E103" ~severity:Error "references undeclared task '%s'"
              endpoint)
        (List.sort_uniq String.compare [ e.es_src; e.es_dst ]);
      if e.es_src = e.es_dst && Hashtbl.mem first_decl e.es_src then
        add ~code:"E101" ~severity:Error "self-loop";
      if Hashtbl.mem seen_edges (e.es_src, e.es_dst) then
        add ~code:"E105" ~severity:Error "duplicate edge"
      else Hashtbl.add seen_edges (e.es_src, e.es_dst) ())
    edges;
  (* cycles through the whole graph *)
  check_cycles
    (fun ~code ~severity ~subject ~line m -> add ~code ~severity ~subject ~line m)
    tasks edges;
  (* system-model references *)
  (match system with
  | None -> ()
  | Some system ->
      check_system
        (fun ~code ~severity ~subject ~line m ->
          add ~code ~severity ~subject ~line m)
        ~system tasks);
  by_line (List.rev !acc)

(* ---------------- post-construction window checks ---------------- *)

let check_windows ?(line_of = fun _ -> None) ~system app =
  match System.validate_for system app with
  | Error e ->
      [
        {
          d_code = "E103";
          d_severity = Error;
          d_subject = "application";
          d_message = e;
          d_line = None;
        };
      ]
  | Ok () ->
      let windows = Est_lct.compute system app in
      let acc = ref [] in
      Array.iter
        (fun (task : Task.t) ->
          let i = task.Task.id in
          let e = windows.Est_lct.est.(i)
          and l = windows.Est_lct.lct.(i)
          and c = task.Task.compute in
          if e + c > l then
            acc :=
              {
                d_code = "E102";
                d_severity = Error;
                d_subject = "task " ^ task.Task.name;
                d_message =
                  Printf.sprintf
                    "EST/LCT window [%d, %d] cannot hold compute %d \
                     (infeasible on every system of this model)"
                    e l c;
                d_line = line_of task.Task.name;
              }
              :: !acc
          else if c > 0 && e + c = l then
            acc :=
              {
                d_code = "W203";
                d_severity = Warning;
                d_subject = "task " ^ task.Task.name;
                d_message =
                  Printf.sprintf
                    "zero slack: EST/LCT window [%d, %d] exactly holds \
                     compute %d"
                    e l c;
                d_line = line_of task.Task.name;
              }
              :: !acc)
        (App.tasks app);
      by_line (List.rev !acc)

let check ?system app =
  let system =
    match system with
    | Some s -> s
    | None -> System.shared_uniform ~resources:(App.resource_set app)
  in
  let tasks, edges = spec_of_app app in
  let spec_diags = check_spec ~system:(Some system) ~tasks ~edges in
  if has_errors spec_diags then spec_diags
  else spec_diags @ check_windows ~system app
