(** Earliest start times and latest completion times (paper, Section 4).

    For every task [i] this computes a lower bound [E_i] on its start time
    and an upper bound [L_i] on its completion time under {e any} feasible
    assignment, taking communication into account through the merging
    argument: a task may share its processor/node with a mergeable subset
    [A] of its immediate successors (resp. predecessors), which removes the
    message latency to them but serialises their execution after (resp.
    before) [i].

    {b Note on the paper's pseudo-code.}  The boxed algorithms in Figures
    2 and 3 have two defects.  First, they initialise [L_i^0]/[E_i^0]
    from the {e non-mergeable} neighbours only, which would make the
    improvement test at [k = 1] trivially fail; the prose and the worked
    example make clear the intent is to start from the no-merge bound
    over all neighbours.  Second — and this one invalidates the stated
    Theorems 1 and 2 — stopping at the first non-improving merge is not
    optimal: with two predecessors of equal [emr], merging either alone
    gains nothing while merging both does, and the greedy then returns a
    value that is NOT a valid bound (the Case 2a step of the proofs
    assumes the blocking term is the sequential-schedule term, which need
    not hold).  This module implements a corrected, still-polynomial
    search: within every union-closed candidate pool
    ({!System.merge_pools}) the optimal merge set is a threshold prefix in
    message-bound order, so valuing all prefixes of all pools is exact.
    The property suite verifies optimality against exhaustive subset
    enumeration. *)

type decision =
  | Merged of int  (** In the optimal merge set; payload is the bound of
                       the prefix ending here. *)
  | Rejected_no_gain of int
      (** First candidate beyond the optimal prefix; payload is the bound
          with it included (not better). *)

type step = {
  candidate : int;  (** Successor/predecessor task considered. *)
  msg_bound : int;  (** Its [lms] (for LCT) or [emr] (for EST). *)
  decision : decision;
}

type trace = {
  center : int;  (** The task whose bound is being computed. *)
  no_merge_bound : int;  (** [lct_i({})] or [est_i({})]. *)
  steps : step list;  (** In the order candidates were examined. *)
  bound : int;  (** Final [L_i] or [E_i]. *)
  merged : int list;  (** Final [G_i] or [M_i], in merge order. *)
}

type t = {
  est : int array;  (** [E_i]. *)
  lct : int array;  (** [L_i]. *)
  est_merged : int list array;  (** [M_i]. *)
  lct_merged : int list array;  (** [G_i]. *)
  est_trace : trace array;
  lct_trace : trace array;
}

val lms : App.t -> lct:int array -> src:int -> dst:int -> int
(** Latest message-send time of [src] with respect to successor [dst]:
    [L_dst - C_dst - m_{src,dst}]. *)

val emr : App.t -> est:int array -> src:int -> dst:int -> int
(** Earliest message-receive time of [dst] with respect to predecessor
    [src]: [E_src + C_src + m_{src,dst}]. *)

val compute : System.t -> App.t -> t
(** Runs both recursions ([E] in topological order, [L] in reverse
    topological order). *)

val recompute :
  System.t -> App.t -> t -> est_dirty:bool array -> lct_dirty:bool array -> t
(** [recompute system app base ~est_dirty ~lct_dirty] re-runs the merge
    search only for the marked tasks, reusing [base]'s values (and merge
    sets, and traces) for every clean one.  The caller must mark dirty
    sets closed under dependency: [est_dirty] must contain every
    descendant of a task whose release or compute time changed,
    [lct_dirty] every ancestor of a task whose deadline or compute time
    changed (the edited tasks included, in both cases).  Under that
    contract the result is bit-identical to [compute system app] — the
    {!Incremental} engine's EST/LCT layer, qcheck-asserted there. *)

val est_of_merge_set : System.t -> App.t -> est:int array -> int -> int list -> int option
(** [est_of_merge_set sys app ~est i a] — Equation 4.5: the earliest start
    time of [i] if exactly the predecessors [a] are co-located with it;
    [None] when [a] (plus [i]) is not mergeable or [a] contains a
    non-predecessor.  Exposed so tests can verify the greedy merge against
    exhaustive enumeration (Theorem 2). *)

val lct_of_merge_set : System.t -> App.t -> lct:int array -> int -> int list -> int option
(** Equation 4.1, mirror of {!est_of_merge_set} (Theorem 1). *)

val feasible_windows : App.t -> t -> (unit, string) Stdlib.result
(** Checks the necessary condition [E_i + C_i <= L_i] for every task; an
    [Error] lists the tasks whose windows are too small — the application
    cannot be feasible on any system of the given model. *)

val pp_trace : App.t -> Format.formatter -> trace -> unit
