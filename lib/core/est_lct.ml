type decision = Merged of int | Rejected_no_gain of int

type step = { candidate : int; msg_bound : int; decision : decision }

type trace = {
  center : int;
  no_merge_bound : int;
  steps : step list;
  bound : int;
  merged : int list;
}

type t = {
  est : int array;
  lct : int array;
  est_merged : int list array;
  lct_merged : int list array;
  est_trace : trace array;
  lct_trace : trace array;
}

let compute_time app i = (App.task app i).Task.compute

let lms app ~lct ~src ~dst =
  lct.(dst) - compute_time app dst - App.message app ~src ~dst

let emr app ~est ~src ~dst =
  est.(src) + compute_time app src + App.message app ~src ~dst

(* The EST and LCT recursions are mirror images; [direction] packages the
   asymmetries so one greedy loop serves both.  Everything is phrased in
   "EST terms"; for the LCT direction the comparisons are flipped by
   [better]/[worse] and the sequential schedule by [seq]. *)

type direction = {
  neighbours : App.t -> int -> int list;  (* Pred_i or Succ_i *)
  boundary : Task.t -> int;  (* rel_i or D_i *)
  msg_of : App.t -> int array -> center:int -> other:int -> int;
  (* emr or lms *)
  combine : int -> int -> int;  (* max for EST, min for LCT *)
  identity : int;  (* neutral element of [combine] *)
  strictly_better : int -> int -> bool;  (* new bound improves on old *)
  candidate_order : int -> int -> int;
  (* examine candidates: decreasing emr / increasing lms *)
  seq : (int * int) list -> int;  (* ect or lst *)
  window : int array -> int -> int;  (* E_j or L_j of a neighbour *)
}

let est_direction =
  {
    neighbours = App.preds;
    boundary = (fun t -> t.Task.release);
    msg_of = (fun app est ~center ~other -> emr app ~est ~src:other ~dst:center);
    combine = max;
    identity = min_int;
    strictly_better = (fun fresh old -> fresh < old);
    candidate_order = compare;
    seq = Seq_schedule.ect;
    window = (fun est j -> est.(j));
  }

let lct_direction =
  {
    neighbours = App.succs;
    boundary = (fun t -> t.Task.deadline);
    msg_of = (fun app lct ~center ~other -> lms app ~lct ~src:center ~dst:other);
    combine = min;
    identity = max_int;
    strictly_better = (fun fresh old -> fresh > old);
    candidate_order = compare;
    seq = Seq_schedule.lst;
    window = (fun lct j -> lct.(j));
  }

(* Equation 4.5 / 4.1 for an explicit merge set [a] (a sublist of the
   neighbours).  [values] holds the already-computed E/L of neighbours. *)
let bound_of_merge_set dir system app values i a =
  let nbrs = dir.neighbours app i in
  if not (List.for_all (fun j -> List.mem j nbrs) a) then None
  else if not (System.mergeable system app (i :: a)) then None
  else
    let boundary = dir.boundary (App.task app i) in
    let unmerged = List.filter (fun j -> not (List.mem j a)) nbrs in
    let msg =
      List.fold_left
        (fun acc j -> dir.combine acc (dir.msg_of app values ~center:i ~other:j))
        dir.identity unmerged
    in
    let seq_bound =
      match a with
      | [] -> dir.identity
      | _ -> dir.seq (List.map (fun j -> (dir.window values j, compute_time app j)) a)
    in
    Some (dir.combine (dir.combine boundary msg) seq_bound)

(* Exact merge search for task [i] (see the .mli note).

   The paper's Figures 2/3 examine candidates greedily and stop at the
   first non-improving merge; that misses optima such as two predecessors
   with equal [emr] where only merging BOTH helps (and Theorem 2's proof,
   Case 2a, silently assumes the blocking term is [ect]).  The correct
   structure: inside a pool (a candidate set closed under union, cf.
   [System.merge_pools]) the optimal merge set is always a threshold set
   "all candidates with msg bound beyond v" --- any other member can be
   dropped without hurting, and every candidate beyond the threshold must
   be included --- and threshold sets are exactly the prefixes of the pool
   in msg-bound order.  Scanning every prefix of every pool is therefore
   an exact, polynomial search. *)
let scan_merges dir system app values i =
  let nbrs = dir.neighbours app i in
  match nbrs with
  | [] ->
      let bound = dir.boundary (App.task app i) in
      { center = i; no_merge_bound = bound; steps = []; bound; merged = [] }
  | _ ->
      let no_merge =
        match bound_of_merge_set dir system app values i [] with
        | Some b -> b
        | None -> assert false
      in
      let sort_pool pool =
        List.map (fun j -> (dir.msg_of app values ~center:i ~other:j, j)) pool
        |> List.sort (fun (m1, j1) (m2, j2) ->
               let c = dir.candidate_order m1 m2 in
               if c <> 0 then c else compare j1 j2)
      in
      (* Value every prefix of a pool (in msg-bound order); keep the best
         value together with its shortest witness prefix. *)
      let scan_pool pool =
        let sorted = sort_pool pool in
        let rec go prefix_rev acc = function
          | [] -> List.rev acc
          | (msg_bound, j) :: rest ->
              let prefix_rev = j :: prefix_rev in
              let prefix = List.rev prefix_rev in
              let value =
                match bound_of_merge_set dir system app values i prefix with
                | Some b -> b
                | None -> assert false
              in
              go prefix_rev ((msg_bound, j, prefix, value) :: acc) rest
        in
        let valued = go [] [] sorted in
        let best =
          List.fold_left
            (fun acc (_, _, prefix, value) ->
              match acc with
              | Some (_, cur) when not (dir.strictly_better value cur) -> acc
              | _ -> Some (prefix, value))
            None valued
        in
        (valued, best)
      in
      let scans =
        List.map (scan_pool) (System.merge_pools system app ~center:i nbrs)
      in
      let best_scan =
        List.fold_left
          (fun acc scan ->
            match (acc, scan) with
            | None, _ -> Some scan
            | Some (_, Some (_, cur)), (_, Some (_, value))
              when dir.strictly_better value cur ->
                Some scan
            | Some (_, None), (_, Some _) -> Some scan
            | Some _, _ -> acc)
          None scans
      in
      let bound, merged, steps =
        match best_scan with
        | Some (valued, Some (prefix, value))
          when dir.strictly_better value no_merge ->
            (* Trace the accepted prefix and, when present, the first
               extension beyond it (a no-gain rejection). *)
            let k = List.length prefix in
            let steps =
              List.filteri (fun idx _ -> idx <= k) valued
              |> List.mapi (fun idx (msg_bound, j, _, v) ->
                     {
                       candidate = j;
                       msg_bound;
                       decision =
                         (if idx < k then Merged v else Rejected_no_gain v);
                     })
            in
            (value, prefix, steps)
        | None | Some (_, _) ->
            (* No pool improves on the unmerged bound; trace the first
               rejection for visibility when a candidate exists. *)
            let steps =
              match scans with
              | (( msg_bound, j, _, v) :: _, _) :: _ ->
                  [ { candidate = j; msg_bound;
                      decision = Rejected_no_gain v } ]
              | _ -> []
            in
            (no_merge, [], steps)
      in
      { center = i; no_merge_bound = no_merge; steps; bound; merged }

let greedy = scan_merges

(* For the LCT of a task, candidates sorted by increasing lms; for the EST,
   by decreasing emr.  [est_direction.candidate_order] above is ascending
   compare, so flip it here for EST. *)
let est_direction = { est_direction with candidate_order = (fun a b -> compare b a) }

let compute system app =
  let n = App.n_tasks app in
  let est = Array.make n 0 and lct = Array.make n 0 in
  let est_merged = Array.make n [] and lct_merged = Array.make n [] in
  let est_trace =
    Array.make n { center = 0; no_merge_bound = 0; steps = []; bound = 0; merged = [] }
  in
  let lct_trace = Array.copy est_trace in
  let order = Dag.topological_order (App.graph app) in
  Array.iter
    (fun i ->
      let tr = greedy est_direction system app est i in
      est.(i) <- tr.bound;
      est_merged.(i) <- tr.merged;
      est_trace.(i) <- tr)
    order;
  Array.iter
    (fun i ->
      let tr = greedy lct_direction system app lct i in
      lct.(i) <- tr.bound;
      lct_merged.(i) <- tr.merged;
      lct_trace.(i) <- tr)
    (Dag.reverse_topological_order (App.graph app));
  { est; lct; est_merged; lct_merged; est_trace; lct_trace }

(* Incremental re-evaluation for the dirty-cone engine (Incremental):
   only the marked tasks are re-run through the merge search, in the
   same topological orders as [compute], against arrays seeded with the
   base run's values.  Correctness rests on the dirty sets being closed
   under dependency — EST under "is a descendant of an edited task", LCT
   under "is an ancestor" — which {!Incremental} guarantees; every clean
   task then has exactly the inputs it had in the base run, so the
   recomputed entries are bit-identical to a cold [compute]. *)
let recompute system app base ~est_dirty ~lct_dirty =
  let est = Array.copy base.est and lct = Array.copy base.lct in
  let est_merged = Array.copy base.est_merged
  and lct_merged = Array.copy base.lct_merged in
  let est_trace = Array.copy base.est_trace
  and lct_trace = Array.copy base.lct_trace in
  Array.iter
    (fun i ->
      if est_dirty.(i) then begin
        let tr = greedy est_direction system app est i in
        est.(i) <- tr.bound;
        est_merged.(i) <- tr.merged;
        est_trace.(i) <- tr
      end)
    (Dag.topological_order (App.graph app));
  Array.iter
    (fun i ->
      if lct_dirty.(i) then begin
        let tr = greedy lct_direction system app lct i in
        lct.(i) <- tr.bound;
        lct_merged.(i) <- tr.merged;
        lct_trace.(i) <- tr
      end)
    (Dag.reverse_topological_order (App.graph app));
  { est; lct; est_merged; lct_merged; est_trace; lct_trace }

let est_of_merge_set system app ~est i a =
  bound_of_merge_set est_direction system app est i a

let lct_of_merge_set system app ~lct i a =
  bound_of_merge_set lct_direction system app lct i a

let feasible_windows app result =
  let bad = ref [] in
  Array.iteri
    (fun i (task : Task.t) ->
      if result.est.(i) + task.Task.compute > result.lct.(i) then
        bad := task.Task.name :: !bad)
    (App.tasks app);
  if !bad = [] then Ok ()
  else
    Error
      (Printf.sprintf "window too small for task(s): %s"
         (String.concat ", " (List.rev !bad)))

let pp_trace app ppf tr =
  let name i = (App.task app i).Task.name in
  Format.fprintf ppf "@[<v>%s: no-merge bound %d" (name tr.center)
    tr.no_merge_bound;
  List.iter
    (fun s ->
      Format.fprintf ppf "@,  consider %s (msg bound %d): %s" (name s.candidate)
        s.msg_bound
        (match s.decision with
        | Merged b -> Printf.sprintf "merged, bound -> %d" b
        | Rejected_no_gain b -> Printf.sprintf "rejected (bound would be %d)" b))
    tr.steps;
  Format.fprintf ppf "@,  final %d, merged {%s}@]" tr.bound
    (String.concat ", " (List.map name tr.merged))
