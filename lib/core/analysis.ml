type t = {
  app : App.t;
  system : System.t;
  windows : Est_lct.t;
  bounds : Lower_bound.bound list;
  cost : Cost.outcome;
  completeness : Lower_bound.completeness;
}

let run ?pool ?deadline_ns ?tracer system app =
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  Rtlb_obs.Tracer.with_span tr "analyze" (fun () ->
      (match System.validate_for system app with
      | Ok () -> ()
      | Error e -> invalid_arg ("Analysis.run: " ^ e));
      let windows =
        Rtlb_obs.Tracer.with_span tr "est_lct" (fun () ->
            Est_lct.compute system app)
      in
      let est = windows.Est_lct.est and lct = windows.Est_lct.lct in
      let bounds, completeness =
        Rtlb_obs.Tracer.with_span tr "lower_bounds" (fun () ->
            Lower_bound.all_within ?pool ?deadline_ns ?tracer ~est ~lct app)
      in
      let cost =
        Rtlb_obs.Tracer.with_span tr "cost" (fun () ->
            Cost.compute system app bounds)
      in
      { app; system; windows; bounds; cost; completeness })

let is_partial t =
  match t.completeness with `Partial _ -> true | `Complete -> false

let coverage t =
  match t.completeness with `Partial f -> f | `Complete -> 1.0

let bound_for t r =
  match
    List.find_opt
      (fun (b : Lower_bound.bound) -> String.equal b.Lower_bound.resource r)
      t.bounds
  with
  | Some b -> b.Lower_bound.lb
  | None -> raise Not_found

let total_processors t =
  let procs =
    Array.to_list (App.tasks t.app)
    |> List.map (fun (task : Task.t) -> task.Task.proc)
    |> List.sort_uniq String.compare
  in
  List.fold_left (fun acc p -> acc + bound_for t p) 0 procs

let is_infeasible t =
  match Est_lct.feasible_windows t.app t.windows with
  | Ok () -> false
  | Error _ -> true

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>== lower-bound analysis ==@,%a@,@,-- task windows --"
    System.pp t.system;
  Array.iteri
    (fun i (task : Task.t) ->
      fprintf ppf "@,%-6s E=%-4d L=%-4d" task.Task.name
        t.windows.Est_lct.est.(i)
        t.windows.Est_lct.lct.(i))
    (App.tasks t.app);
  fprintf ppf "@,@,-- bounds --";
  (match t.completeness with
  | `Complete -> ()
  | `Partial f ->
      fprintf ppf
        "@,PARTIAL: time budget exhausted after %.1f%% of the interval \
         scans; bounds are valid but may be below the exhaustive values"
        (100.0 *. f));
  let names i = (App.task t.app i).Task.name in
  List.iter
    (fun (b : Lower_bound.bound) ->
      fprintf ppf "@,%a@,   partition: %a" Lower_bound.pp_bound b
        (Partition.pp ~names) b.Lower_bound.partition)
    t.bounds;
  fprintf ppf "@,@,-- cost --@,%a@]" Cost.pp_outcome t.cost
