(** Structure-of-arrays analysis engine.

    [pack] compiles an instance once into contiguous [Bigarray] int
    arrays — per-task scalars, CSR successor/predecessor adjacency with
    message weights, and a per-resource member table — and the EST/LCT
    merge-search sweep, the Section-5 partition and the Theta prefix-sum
    interval scan all iterate over those arrays with no per-task
    allocation.  Results (windows, bounds, witnesses, partitions, cost)
    are bit-identical to the record path ({!Est_lct} / {!Lower_bound} /
    {!Analysis}); the only divergence is that merge {e traces} — the
    [explain] artifact — are left empty, so [rtlb explain] always uses
    the record engine.

    The interval scan adds {e candidate-interval dominance pruning}: an
    O(n log n) precomputation bounds the kernel total for every left
    endpoint, and intervals whose ceiling density upper bound falls
    strictly below the block's incumbent are skipped.  Pruning is
    strict-inequality only and incumbents are per partition block, so
    the earliest winning witness of the exhaustive fold always survives
    — on the sequential and the {!Rtlb_par.Pool} path alike.  Set
    [RTLB_SOA_NO_PRUNE] in the environment (or pass [~prune:false]) to
    force the exhaustive scan. *)

type t
(** A packed instance.  The window arrays ([est]/[lct]) live inside and
    are computed / updated in place. *)

val pack : System.t -> App.t -> t
(** Compile an instance into packed arrays.  Window arrays start
    uninitialised; call {!compute_windows}.  Raises [Invalid_argument]
    for dedicated systems with more node types than host-mask bits
    (62 on 64-bit). *)

val unpack : t -> App.t
(** Rebuild the application from the packed arrays alone (names, task
    scalars, demands from the resource table, edges from the CSR).
    [unpack (pack s app)] is structurally equal to [app]. *)

val n_tasks : t -> int

val system : t -> System.t

val app : t -> App.t
(** The application [pack] was given (not a reconstruction). *)

val compute_windows : t -> unit
(** Run the full EST/LCT merge-search sweep over the packed arrays, in
    place; values are bit-identical to [Est_lct.compute]. *)

val recompute_windows : t -> est_dirty:bool array -> lct_dirty:bool array -> unit
(** Re-run the sweep for the marked tasks only, in the same topological
    orders, against the current in-place values — the packed mirror of
    [Est_lct.recompute]; the same dirty-cone closure obligations apply. *)

val set_release : t -> int -> int -> unit
val set_deadline : t -> int -> int -> unit

val set_compute : t -> int -> int -> unit
(** In-place scalar edits (task id, new value).  No validation: callers
    are expected to hold values a [Task.t] already accepted. *)

val copy_base : t -> t
(** Snapshot the mutable arrays (scalars and windows) for later
    {!restore_from}.  Shares all immutable structure. *)

val restore_from : t -> base:t -> unit
(** Blit the snapshot's scalars and windows back, undoing in-place
    edits. *)

val est_array : t -> int array

val lct_array : t -> int array
(** Fresh copies of the current window values. *)

val windows : t -> Est_lct.t
(** The windows as the record type: values copied from the packed
    arrays, merge sets and traces empty. *)

val bounds :
  ?prune:bool ->
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  t ->
  Lower_bound.bound list * Lower_bound.completeness
(** The per-resource lower bounds from the current windows, via the
    packed partition + pruned interval scan.  Work items, fold order,
    [Tasks_scanned]/[Theta_evals]/[Candidate_intervals] accounting and
    the [?deadline_ns] partial semantics mirror
    [Lower_bound.all_within]; with pruning, [Theta_evals] counts only
    the evaluations actually executed.  [prune] defaults to [true]
    unless [RTLB_SOA_NO_PRUNE] is set. *)

val scan_from :
  t ->
  resource:string ->
  int list ->
  int array ->
  int ->
  int * Lower_bound.witness option
(** [scan_from t ~resource tasks pts a]: one left endpoint of one block
    against the current packed windows — the packed, unpruned equivalent
    of [Lower_bound.scan_from], used by the incremental engine's live
    block scans. *)

val default_prune : unit -> bool
(** [true] unless [RTLB_SOA_NO_PRUNE] is set in the environment. *)

val analyze :
  ?prune:bool ->
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  System.t ->
  App.t ->
  Analysis.t
(** Pack, sweep, scan, cost: the drop-in packed equivalent of
    [Analysis.run].  All result fields except the merge traces are
    bit-identical to the record engine. *)
