type point = { d_t1 : int; d_t2 : int; d_theta : int; d_units : int }

type t = {
  d_resource : string;
  d_window : int;
  d_points : point list;
  d_peak : point option;
}

let ceil_div a b = (a + b - 1) / b

let point ~est ~lct app ~resource tasks ~t1 ~t2 =
  let theta = Lower_bound.theta ~resource ~est ~lct app tasks ~t1 ~t2 in
  { d_t1 = t1; d_t2 = t2; d_theta = theta; d_units = ceil_div theta (t2 - t1) }

let peak points =
  List.fold_left
    (fun acc p ->
      match acc with
      | Some best when best.d_units >= p.d_units -> acc
      | _ -> Some p)
    None points

let sliding ~est ~lct app ~resource ~window =
  if window <= 0 then invalid_arg "Demand.sliding: non-positive window";
  let tasks = App.tasks_using app resource in
  let points =
    match tasks with
    | [] -> []
    | _ ->
        let lo = List.fold_left (fun a i -> min a est.(i)) max_int tasks in
        let hi = List.fold_left (fun a i -> max a lct.(i)) min_int tasks in
        Lower_bound.candidate_points ~est ~lct tasks ~lo ~hi
        |> List.filter (fun t -> t + window <= hi)
        |> List.map (fun t1 ->
               point ~est ~lct app ~resource tasks ~t1 ~t2:(t1 + window))
  in
  { d_resource = resource; d_window = window; d_points = points; d_peak = peak points }

let peak_over_all_windows ~est ~lct app ~resource =
  let tasks = App.tasks_using app resource in
  match tasks with
  | [] -> None
  | _ ->
      let lo = List.fold_left (fun a i -> min a est.(i)) max_int tasks in
      let hi = List.fold_left (fun a i -> max a lct.(i)) min_int tasks in
      if lo >= hi then None
      else
        let pts =
          Array.of_list (Lower_bound.candidate_points ~est ~lct tasks ~lo ~hi)
        in
        let best = ref None in
        for a = 0 to Array.length pts - 2 do
          let t1 = pts.(a) in
          let kernel =
            Lower_bound.Theta_kernel.make ~resource ~est ~lct app tasks ~t1
          in
          for b = a + 1 to Array.length pts - 1 do
            let t2 = pts.(b) in
            let theta = Lower_bound.Theta_kernel.eval kernel ~t2 in
            let p =
              { d_t1 = t1; d_t2 = t2; d_theta = theta;
                d_units = ceil_div theta (t2 - t1) }
            in
            match !best with
            | Some bp when bp.d_units >= p.d_units -> ()
            | _ -> best := Some p
          done
        done;
        !best

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "demand profile for %s (window %d)\n" t.d_resource
       t.d_window);
  let width =
    List.fold_left
      (fun acc p -> max acc (String.length (string_of_int p.d_t2)))
      1 t.d_points
  in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%*d..%-*d %s %d\n" width p.d_t1 width p.d_t2
           (String.make p.d_units '#')
           p.d_units))
    t.d_points;
  (match t.d_peak with
  | Some p ->
      Buffer.add_string buf
        (Printf.sprintf "peak: %d unit(s) on [%d, %d) (demand %d)\n" p.d_units
           p.d_t1 p.d_t2 p.d_theta)
  | None -> Buffer.add_string buf "no demand\n");
  Buffer.contents buf
