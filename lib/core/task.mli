(** Application tasks (paper, Section 2.1).

    A task carries every per-vertex annotation of the application DAG:
    computation time [C_i], release time [rel_i], deadline [D_i], processor
    type [phi_i], resource requirements [R_i], and preemptability.  Time is
    discrete ([int]): all quantities the analysis derives are +/-/min/max
    combinations of these inputs, so integer time is exact. *)

type t = private {
  id : int;  (** Index of the task's vertex in the application DAG. *)
  name : string;
  compute : int;  (** [C_i >= 0]; [0] marks a milestone/synchronisation task. *)
  release : int;  (** [rel_i >= 0]. *)
  deadline : int;  (** [D_i]. *)
  proc : string;  (** [phi_i], the required processor type. *)
  resources : string list;  (** [R_i], sorted and deduplicated; excludes [proc]. *)
  demands : (string * int) list;
      (** Units required per resource, sorted by name; listing a resource
          [k] times in [make]'s [resources] demands [k] units held
          simultaneously. *)
  preemptive : bool;
}

val make :
  id:int ->
  ?name:string ->
  compute:int ->
  ?release:int ->
  deadline:int ->
  proc:string ->
  ?resources:string list ->
  ?preemptive:bool ->
  unit ->
  t
(** Smart constructor; [name] defaults to ["T<id+1>"], [release] to [0],
    [resources] to [[]], [preemptive] to [false] (the common hard-real-time
    case, and the paper example's setting).  A resource listed [k] times
    demands [k] units simultaneously (e.g. a task DMA-ing through two bus
    channels lists ["bus"; "bus"]).
    @raise Invalid_argument when [compute < 0], [release < 0],
      [release + compute > deadline], or [proc = ""]. *)

val needs : t -> string list
(** [R_i] together with [phi_i] — everything the task occupies while it
    runs.  This is the per-task slice of the paper's [RES]. *)

val uses : t -> string -> bool
(** [uses t r] is true when [r] is the processor type or a resource of [t]. *)

val units : t -> string -> int
(** Units of [r] the task holds while running: [1] for its processor
    type, the demanded count for resources, [0] otherwise. *)

val laxity : t -> int
(** [deadline - release - compute]: slack available before any graph
    constraints are considered. *)

val with_preemptive : t -> bool -> t
(** Same task with preemptability replaced (for Theorem 3/4 comparisons). *)

val with_deadline : t -> int -> t
(** Same task with the deadline replaced.
    @raise Invalid_argument when the new deadline is too tight. *)

val with_release : t -> int -> t
(** Same task with the release time replaced.
    @raise Invalid_argument when negative or [release + compute] exceeds
      the deadline. *)

val with_compute : t -> int -> t
(** Same task with the computation time replaced.
    @raise Invalid_argument when negative or the window cannot hold it. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
