(** Hyperperiod unrolling: lower a sporadic task set into the paper's
    one-shot DAG model.

    Every vertex of every task becomes a {!Rtlb.Periodic.ptask} named
    ["task.vertex"] with the task's period and relative deadline, and the
    intra-task edges become zero-message periodic edges (equal periods,
    so the sample-and-hold pairing connects job [k] to job [k] — exactly
    the job-level precedence of the sporadic DAG semantics).  The
    synchronous unrolling is the densest legal sporadic arrival sequence,
    so bounds computed on it are meaningful for the steady state, and its
    hyperperiod arithmetic inherits {!Rtlb.Periodic}'s overflow
    detection. *)

val hyperperiod : Model.t -> int
(** Lcm of the task periods.  @raise Invalid_argument on int overflow. *)

val horizon : ?cycles:int -> Model.t -> int
(** [cycles] hyperperiods (default [1]), overflow-checked
    ({!Rtlb.Periodic.horizon_of}); arbitrary-deadline sets typically need
    [cycles >= 2] to observe a steady state. *)

val job_count : ?cycles:int -> Model.t -> int
(** Jobs {!to_app} would materialise: one per vertex per period. *)

val to_app : ?cycles:int -> ?preemptive:bool -> Model.t -> Rtlb.App.t
(** Materialise all jobs released in [cycles] hyperperiods (default [1])
    as a one-shot application.  [preemptive] (default [false]) marks
    every job preemptive — use it when validating against the preemptive
    EDF simulator.  Job ["t.v@k"] releases at [k * T_t] with absolute
    deadline [k * T_t + D_t].
    @raise Invalid_argument on horizon overflow. *)

val task_app : Model.dtask -> Rtlb.App.t
(** One activation of one task in isolation: the task's DAG as a
    one-shot application (releases [0], every vertex deadline [D]) — the
    object the intra-task response-time bounds and the exact makespan
    search reason about. *)
