(** Line-oriented text format for sporadic DAG task sets, in the style of
    {!Rtfmt.Appfile}:

    {v
    # video pipeline
    task flow period=12 deadline=10 proc=P
    vertex read 2
    vertex filter 3
    edge read filter
    task tick period=6
    vertex t 2
    v}

    A [task NAME period=N \[deadline=N\] \[proc=S\]] line opens a task;
    subsequent [vertex NAME WCET] and [edge SRC DST] lines belong to it.
    Deadline defaults to the period.  Blank lines and [#] comments are
    ignored.  {!parse} and {!to_string} round-trip. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Model.t
(** @raise Parse_error on malformed input or model-level violations
      (cycles, duplicate names, wcet exceeding the deadline, ...) —
      model errors are reported at the offending task's [task] line,
      edge-name errors at the [edge] line. *)

val parse_file : string -> Model.t

val to_string : Model.t -> string
(** Canonical rendering: [parse (to_string m)] equals [m] up to the
    edge order produced by the parser. *)
