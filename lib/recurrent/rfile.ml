exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type building = {
  b_line : int;
  b_name : string;
  b_proc : string;
  b_period : int;
  b_deadline : int option;
  b_vertices : (string * int) list;  (* reversed *)
  b_edges : (string * string * int) list;  (* src, dst, line; reversed *)
}

let finish b =
  let vertices =
    Array.of_list
      (List.rev_map
         (fun (n, w) -> { Model.v_name = n; v_wcet = w })
         b.b_vertices)
  in
  let index name =
    let rec go i =
      if i >= Array.length vertices then None
      else if String.equal vertices.(i).Model.v_name name then Some i
      else go (i + 1)
    in
    go 0
  in
  let edges =
    List.rev_map
      (fun (s, d, line) ->
        match (index s, index d) with
        | Some a, Some b -> (a, b)
        | None, _ -> fail line "unknown vertex %s in edge" s
        | _, None -> fail line "unknown vertex %s in edge" d)
      b.b_edges
  in
  try
    Model.dtask ~name:b.b_name ~proc:b.b_proc ~period:b.b_period
      ?deadline:b.b_deadline ~vertices ~edges ()
  with Invalid_argument msg -> raise (Parse_error (b.b_line, msg))

let parse text =
  let lines = String.split_on_char '\n' text in
  let keyval line tok =
    match String.index_opt tok '=' with
    | Some i ->
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
    | None -> fail line "expected key=value, got %S" tok
  in
  let int_of line key v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail line "%s expects an integer, got %S" key v
  in
  let rec go lineno current acc = function
    | [] ->
        let acc = match current with None -> acc | Some b -> finish b :: acc in
        (match List.rev acc with
        | [] -> fail lineno "no tasks in file"
        | tasks -> (
            try Model.make ~tasks
            with Invalid_argument msg -> raise (Parse_error (lineno, msg))))
    | raw :: rest -> (
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then go (lineno + 1) current acc rest
        else
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | "task" :: name :: kvs ->
              let acc =
                match current with None -> acc | Some b -> finish b :: acc
              in
              let b =
                List.fold_left
                  (fun b tok ->
                    match keyval lineno tok with
                    | "period", v ->
                        { b with b_period = int_of lineno "period" v }
                    | "deadline", v ->
                        { b with b_deadline = Some (int_of lineno "deadline" v) }
                    | "proc", v -> { b with b_proc = v }
                    | k, _ -> fail lineno "unknown task attribute %S" k)
                  {
                    b_line = lineno;
                    b_name = name;
                    b_proc = "P";
                    b_period = 0;
                    b_deadline = None;
                    b_vertices = [];
                    b_edges = [];
                  }
                  kvs
              in
              if b.b_period = 0 then fail lineno "task %s has no period" name;
              go (lineno + 1) (Some b) acc rest
          | "vertex" :: name :: wcet :: [] -> (
              match current with
              | None -> fail lineno "vertex before any task line"
              | Some b ->
                  if List.mem_assoc name b.b_vertices then
                    fail lineno "duplicate vertex %s" name;
                  let w = int_of lineno "wcet" wcet in
                  go (lineno + 1)
                    (Some { b with b_vertices = (name, w) :: b.b_vertices })
                    acc rest)
          | "edge" :: src :: dst :: [] -> (
              match current with
              | None -> fail lineno "edge before any task line"
              | Some b ->
                  go (lineno + 1)
                    (Some { b with b_edges = (src, dst, lineno) :: b.b_edges })
                    acc rest)
          | tok :: _ -> fail lineno "unknown directive %S" tok
          | [] -> go (lineno + 1) current acc rest)
  in
  go 1 None [] lines

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (In_channel.input_all ic))

let to_string (m : Model.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (dt : Model.dtask) ->
      Buffer.add_string buf
        (Printf.sprintf "task %s period=%d deadline=%d proc=%s\n"
           dt.Model.dt_name dt.Model.dt_period dt.Model.dt_deadline
           dt.Model.dt_proc);
      Array.iter
        (fun (v : Model.vertex) ->
          Buffer.add_string buf
            (Printf.sprintf "vertex %s %d\n" v.Model.v_name v.Model.v_wcet))
        dt.Model.dt_vertices;
      List.iter
        (fun (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf "edge %s %s\n" dt.Model.dt_vertices.(a).Model.v_name
               dt.Model.dt_vertices.(b).Model.v_name))
        dt.Model.dt_edges)
    m.Model.tasks;
  Buffer.contents buf
