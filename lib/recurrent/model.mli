(** Sporadic DAG tasks — the recurrent generalisation of the paper's
    one-shot model.

    A task is a DAG of vertices (each a worst-case execution time), a
    period (minimum inter-arrival time of the sporadic stream) and a
    relative deadline.  A {e task set} is a list of such tasks.  Deadline
    regimes follow the literature: {e implicit} ([D = T]), {e constrained}
    ([D < T]) and {e arbitrary} ([D > T]).

    The model deliberately carries no resources, messages or processor
    heterogeneity: the modern response-time baselines in [lib/baselines]
    ({!Baselines.Bonifaci}, {!Baselines.He_long_paths},
    {!Baselines.Multi_path}) are stated for identical multiprocessors, and
    {!Unroll} lowers a task set into the richer one-shot model when the
    paper's full analysis is wanted. *)

type vertex = { v_name : string; v_wcet : int  (** [>= 0]. *) }

type dtask = {
  dt_name : string;
  dt_vertices : vertex array;  (** Vertex ids are array indices. *)
  dt_edges : (int * int) list;  (** Intra-task precedence, acyclic. *)
  dt_period : int;  (** Minimum inter-arrival time, [> 0]. *)
  dt_deadline : int;  (** Relative deadline, [> 0]. *)
  dt_proc : string;  (** Processor type the unrolled jobs run on. *)
}

type t = { tasks : dtask list }

type deadline_class = Implicit | Constrained | Arbitrary

val dtask :
  name:string ->
  ?proc:string ->
  period:int ->
  ?deadline:int ->
  vertices:vertex array ->
  edges:(int * int) list ->
  unit ->
  dtask
(** [deadline] defaults to the period (implicit); [proc] to ["P"].
    Names are restricted to [\[A-Za-z0-9_-\]+] so the ["task.vertex@k"]
    job names minted by {!Unroll} stay unambiguous.
    @raise Invalid_argument on non-positive period/deadline, empty or
      duplicate vertices, a vertex wcet that is negative or exceeds the
      relative deadline, out-of-range or self-loop edges, or a cycle. *)

val make : tasks:dtask list -> t
(** @raise Invalid_argument on an empty list or duplicate task names. *)

val vol : dtask -> int
(** Total work: sum of all vertex wcets. *)

val len : dtask -> int
(** Critical-path length: the heaviest vertex-weighted path. *)

val classify : dtask -> deadline_class

val taskset_class : t -> deadline_class
(** The least restrictive regime present ([Arbitrary] dominates
    [Constrained] dominates [Implicit]). *)

val class_name : deadline_class -> string

val utilisation : t -> Rat.t
(** [sum vol_i / T_i] — a task set with [U > m] is infeasible on [m]
    unit-speed processors. *)

val topological_order : n:int -> edges:(int * int) list -> int array option
(** Kahn topological order of an [n]-vertex edge list, [None] on a
    cycle.  Exposed for the path computations in [lib/baselines]. *)
