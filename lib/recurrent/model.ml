type vertex = { v_name : string; v_wcet : int }

type dtask = {
  dt_name : string;
  dt_vertices : vertex array;
  dt_edges : (int * int) list;
  dt_period : int;
  dt_deadline : int;
  dt_proc : string;
}

type t = { tasks : dtask list }

type deadline_class = Implicit | Constrained | Arbitrary

let valid_name n =
  String.length n > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       n

(* Topological order of the vertex DAG, or a cycle error.  Kahn's
   algorithm; also the workhorse for [len]. *)
let topological_order ~n ~edges =
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) ->
      indeg.(b) <- indeg.(b) + 1;
      succs.(a) <- b :: succs.(a))
    edges;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(v)
  done;
  if !seen <> n then None else Some (Array.of_list (List.rev !order))

let dtask ~name ?(proc = "P") ~period ?deadline ~vertices ~edges () =
  let deadline = Option.value ~default:period deadline in
  if not (valid_name name) then
    invalid_arg
      (Printf.sprintf
         "Recurrent.Model.dtask: invalid task name %S (letters, digits, _, -)"
         name);
  if period <= 0 then
    invalid_arg ("Recurrent.Model.dtask: non-positive period for " ^ name);
  if deadline <= 0 then
    invalid_arg ("Recurrent.Model.dtask: non-positive deadline for " ^ name);
  if Array.length vertices = 0 then
    invalid_arg ("Recurrent.Model.dtask: no vertices in " ^ name);
  let n = Array.length vertices in
  Array.iter
    (fun v ->
      if not (valid_name v.v_name) then
        invalid_arg
          (Printf.sprintf "Recurrent.Model.dtask: invalid vertex name %S in %s"
             v.v_name name);
      if v.v_wcet < 0 then
        invalid_arg
          (Printf.sprintf "Recurrent.Model.dtask: negative wcet on %s.%s" name
             v.v_name);
      (* Each vertex must fit the relative deadline on its own, otherwise
         no job of it can be represented in the one-shot model (and the
         task is trivially infeasible anyway). *)
      if v.v_wcet > deadline then
        invalid_arg
          (Printf.sprintf
             "Recurrent.Model.dtask: wcet %d of %s.%s exceeds the relative \
              deadline %d"
             v.v_wcet name v.v_name deadline))
    vertices;
  let names = Array.to_list (Array.map (fun v -> v.v_name) vertices) in
  if List.length (List.sort_uniq String.compare names) <> n then
    invalid_arg ("Recurrent.Model.dtask: duplicate vertex names in " ^ name);
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg
          (Printf.sprintf "Recurrent.Model.dtask: edge (%d, %d) out of range \
                           in %s" a b name);
      if a = b then
        invalid_arg
          (Printf.sprintf "Recurrent.Model.dtask: self-loop on vertex %d in %s"
             a name))
    edges;
  (match topological_order ~n ~edges with
  | Some _ -> ()
  | None ->
      invalid_arg ("Recurrent.Model.dtask: vertex graph of " ^ name
                   ^ " has a cycle"));
  { dt_name = name; dt_vertices = vertices; dt_edges = edges;
    dt_period = period; dt_deadline = deadline; dt_proc = proc }

let make ~tasks =
  if tasks = [] then invalid_arg "Recurrent.Model.make: empty task set";
  let names = List.map (fun t -> t.dt_name) tasks in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Recurrent.Model.make: duplicate task names";
  { tasks }

let vol dt = Array.fold_left (fun acc v -> acc + v.v_wcet) 0 dt.dt_vertices

let len dt =
  let n = Array.length dt.dt_vertices in
  match topological_order ~n ~edges:dt.dt_edges with
  | None -> assert false (* constructor rejected cycles *)
  | Some order ->
      let dist = Array.make n 0 in
      let preds = Array.make n [] in
      List.iter (fun (a, b) -> preds.(b) <- a :: preds.(b)) dt.dt_edges;
      Array.iter
        (fun v ->
          let best = List.fold_left (fun acc p -> max acc dist.(p)) 0 preds.(v) in
          dist.(v) <- best + dt.dt_vertices.(v).v_wcet)
        order;
      Array.fold_left max 0 dist

let classify dt =
  if dt.dt_deadline = dt.dt_period then Implicit
  else if dt.dt_deadline < dt.dt_period then Constrained
  else Arbitrary

let class_name = function
  | Implicit -> "implicit"
  | Constrained -> "constrained"
  | Arbitrary -> "arbitrary"

let taskset_class { tasks } =
  List.fold_left
    (fun acc dt ->
      match (acc, classify dt) with
      | Arbitrary, _ | _, Arbitrary -> Arbitrary
      | Constrained, _ | _, Constrained -> Constrained
      | Implicit, Implicit -> Implicit)
    Implicit tasks

let utilisation { tasks } =
  List.fold_left
    (fun acc dt -> Rat.add acc (Rat.make (vol dt) dt.dt_period))
    Rat.zero tasks
