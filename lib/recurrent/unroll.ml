open Rtlb

let ptasks_of ?(preemptive = false) (m : Model.t) =
  List.concat_map
    (fun (dt : Model.dtask) ->
      Array.to_list
        (Array.map
           (fun (v : Model.vertex) ->
             Periodic.ptask
               ~name:(dt.Model.dt_name ^ "." ^ v.Model.v_name)
               ~period:dt.Model.dt_period ~compute:v.Model.v_wcet
               ~deadline:dt.Model.dt_deadline ~proc:dt.Model.dt_proc
               ~preemptive ())
           dt.Model.dt_vertices))
    m.Model.tasks

let pedges_of (m : Model.t) =
  List.concat_map
    (fun (dt : Model.dtask) ->
      List.map
        (fun (a, b) ->
          ( dt.Model.dt_name ^ "." ^ dt.Model.dt_vertices.(a).Model.v_name,
            dt.Model.dt_name ^ "." ^ dt.Model.dt_vertices.(b).Model.v_name,
            0 ))
        dt.Model.dt_edges)
    m.Model.tasks

let hyperperiod m = Periodic.hyperperiod (ptasks_of m)
let horizon ?cycles m = Periodic.horizon_of ?cycles (ptasks_of m)

let job_count ?cycles m =
  Periodic.job_count ~horizon:(horizon ?cycles m) (ptasks_of m)

let to_app ?cycles ?preemptive m =
  let tasks = ptasks_of ?preemptive m in
  Periodic.unroll ~horizon:(Periodic.horizon_of ?cycles tasks) ~tasks
    ~edges:(pedges_of m) ()

(* One activation of a single task in isolation: the DAG itself as a
   one-shot application (all releases 0, common absolute deadline D).
   This is what the intra-task response-time bounds and the exact
   branch-and-bound makespan reason about. *)
let task_app (dt : Model.dtask) =
  let tasks =
    Array.to_list
      (Array.mapi
         (fun i (v : Model.vertex) ->
           Task.make ~id:i ~name:v.Model.v_name ~compute:v.Model.v_wcet
             ~deadline:dt.Model.dt_deadline ~proc:dt.Model.dt_proc ())
         dt.Model.dt_vertices)
  in
  let edges = List.map (fun (a, b) -> (a, b, 0)) dt.Model.dt_edges in
  App.make ~tasks ~edges
