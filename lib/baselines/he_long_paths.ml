open Recurrent

let ceil_div a b = (a + b - 1) / b

type tie = Small_index | Large_index | Heavy | Light

(* Lexicographic preference key applied after the path length itself:
   larger key wins.  All four are total orders, so every greedy family is
   deterministic. *)
let key (dt : Model.dtask) tie v =
  match tie with
  | Small_index -> (0, -v)
  | Large_index -> (0, v)
  | Heavy -> (dt.Model.dt_vertices.(v).Model.v_wcet, -v)
  | Light -> (-dt.Model.dt_vertices.(v).Model.v_wcet, -v)

let graham ~m dt =
  if m <= 0 then invalid_arg "He_long_paths.graham: m must be positive";
  let l = Model.len dt and v = Model.vol dt in
  l + ceil_div (v - l) m

(* Heaviest alive path under the tie-break, as (length, vertex list), or
   [None] when no vertex is alive. *)
let longest_alive (dt : Model.dtask) tie alive =
  let n = Array.length dt.Model.dt_vertices in
  let order =
    match Model.topological_order ~n ~edges:dt.Model.dt_edges with
    | Some o -> o
    | None -> assert false (* the model constructor rejected cycles *)
  in
  let preds = Array.make n [] in
  List.iter (fun (a, b) -> preds.(b) <- a :: preds.(b)) dt.Model.dt_edges;
  let dist = Array.make n min_int in
  let back = Array.make n (-1) in
  Array.iter
    (fun v ->
      if alive.(v) then begin
        let best = ref None in
        List.iter
          (fun p ->
            if alive.(p) && dist.(p) > min_int then
              match !best with
              | None -> best := Some p
              | Some b ->
                  if
                    compare (dist.(p), key dt tie p) (dist.(b), key dt tie b)
                    > 0
                  then best := Some p)
          preds.(v);
        match !best with
        | None ->
            dist.(v) <- dt.Model.dt_vertices.(v).Model.v_wcet;
            back.(v) <- -1
        | Some b ->
            dist.(v) <- dist.(b) + dt.Model.dt_vertices.(v).Model.v_wcet;
            back.(v) <- b
      end)
    order;
  let best = ref None in
  for v = 0 to n - 1 do
    if alive.(v) then
      match !best with
      | None -> best := Some v
      | Some b ->
          if compare (dist.(v), key dt tie v) (dist.(b), key dt tie b) > 0
          then best := Some v
  done;
  match !best with
  | None -> None
  | Some e ->
      let rec walk v acc = if v = -1 then acc else walk back.(v) (v :: acc) in
      Some (dist.(e), walk e [])

let paths_with ~tie ~m (dt : Model.dtask) =
  if m <= 0 then invalid_arg "He_long_paths.paths_with: m must be positive";
  let n = Array.length dt.Model.dt_vertices in
  let alive = Array.make n true in
  let rec go i acc =
    if i >= m then List.rev acc
    else
      match longest_alive dt tie alive with
      | None -> List.rev acc
      | Some (l, vs) ->
          List.iter (fun v -> alive.(v) <- false) vs;
          go (i + 1) (l :: acc)
  in
  go 0 []

let paths ~m dt = paths_with ~tie:Small_index ~m dt

let value ~m dt lengths =
  match lengths with
  | [] -> 0
  | l1 :: _ ->
      let covered = List.fold_left ( + ) 0 lengths in
      l1 + ceil_div (max 0 (Model.vol dt - covered)) m

(* Priority ranks from the full greedy decomposition (not capped at m):
   vertices of the heaviest path rank first, in path order, then the
   heaviest path of the remainder, and so on until every vertex is
   ranked. *)
let ranks_with ~tie (dt : Model.dtask) =
  let n = Array.length dt.Model.dt_vertices in
  let alive = Array.make n true in
  let rank = Array.make n 0 in
  let next = ref 0 in
  let rec go () =
    match longest_alive dt tie alive with
    | None -> ()
    | Some (_, vs) ->
        List.iter
          (fun v ->
            alive.(v) <- false;
            rank.(v) <- !next;
            incr next)
          vs;
        go ()
  in
  go ();
  rank

(* Work-conserving list schedule on [m] identical processors under the
   given priority ranks (lower rank first); returns the makespan.  At
   every decision instant the earliest-startable highest-priority ready
   vertex is placed on the earliest-free processor — never idling a
   processor while something is ready, which is what puts the makespan
   inside Graham's single-path bound. *)
let list_makespan ~m (dt : Model.dtask) rank =
  if m <= 0 then invalid_arg "He_long_paths.list_makespan: m must be positive";
  let n = Array.length dt.Model.dt_vertices in
  let preds = Array.make n [] in
  List.iter (fun (a, b) -> preds.(b) <- a :: preds.(b)) dt.Model.dt_edges;
  let finish = Array.make n (-1) in
  let proc_free = Array.make m 0 in
  let scheduled = ref 0 in
  let makespan = ref 0 in
  while !scheduled < n do
    let proc_t = Array.fold_left min proc_free.(0) proc_free in
    (* Earliest possible start among ready vertices, then best priority
       among those achieving it. *)
    let best = ref None in
    for v = 0 to n - 1 do
      if finish.(v) < 0 && List.for_all (fun p -> finish.(p) >= 0) preds.(v)
      then begin
        let ready =
          List.fold_left (fun acc p -> max acc finish.(p)) 0 preds.(v)
        in
        let start = max ready proc_t in
        match !best with
        | None -> best := Some (start, rank.(v), v)
        | Some (s, r, _) ->
            if (start, rank.(v)) < (s, r) then best := Some (start, rank.(v), v)
      end
    done;
    match !best with
    | None -> assert false (* acyclic, so some unfinished vertex is ready *)
    | Some (start, _, v) ->
        let f = start + dt.Model.dt_vertices.(v).Model.v_wcet in
        finish.(v) <- f;
        makespan := max !makespan f;
        (* occupy the earliest-free processor *)
        let pi = ref 0 in
        for i = 1 to m - 1 do
          if proc_free.(i) < proc_free.(!pi) then pi := i
        done;
        proc_free.(!pi) <- f;
        incr scheduled
  done;
  !makespan

let makespan_with ~tie ~m dt = list_makespan ~m dt (ranks_with ~tie dt)
let bound ~m dt = makespan_with ~tie:Small_index ~m dt
