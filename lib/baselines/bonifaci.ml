open Recurrent

let ceil_div a b = (a + b - 1) / b

let necessary ~m (ts : Model.t) =
  if m <= 0 then invalid_arg "Bonifaci.necessary: m must be positive";
  List.for_all
    (fun (dt : Model.dtask) -> Model.len dt <= dt.Model.dt_deadline)
    ts.Model.tasks
  && List.for_all
       (fun (dt : Model.dtask) -> Model.vol dt <= m * dt.Model.dt_deadline)
       ts.Model.tasks
  && Rat.(Model.utilisation ts <= Rat.of_int m)

(* Interfering workload of task [j] in any window of length [t], assuming
   every task meets its deadline (the standard inductive premise of
   response-time analysis): a job of [j] executing inside the window was
   released after [window start - D_j] and before the window's end, so at
   most [floor((t + D_j) / T_j) + 1] jobs contribute, each at most its
   whole volume.  Deliberately conservative (no carve-out for the carry-in
   and carry-out fractions) — the schedulable verdict must stay sound, and
   the differential suite checks exactly that direction against the
   preemptive EDF simulator. *)
let workload (dt : Model.dtask) t =
  (((t + dt.Model.dt_deadline) / dt.Model.dt_period) + 1) * Model.vol dt

(* Smallest fixpoint of
     R = len + ceil((vol - len + sum_j workload_j(R)) / m)
   not exceeding the deadline.  The right-hand side is monotone in [R]
   and bounded below by the Graham bound, so iterating from there either
   reaches a fixpoint or escapes past the deadline. *)
let response_bound ~m ~interferers (dt : Model.dtask) =
  let l = Model.len dt and v = Model.vol dt in
  let rhs r =
    let interference =
      List.fold_left (fun acc j -> acc + workload j r) 0 interferers
    in
    l + ceil_div (v - l + interference) m
  in
  let rec iter r =
    if r > dt.Model.dt_deadline then None
    else
      let r' = rhs r in
      if r' = r then Some r else iter (max r' (r + 1))
  in
  iter (He_long_paths.graham ~m dt)

let others name tasks =
  List.filter (fun (dt : Model.dtask) -> dt.Model.dt_name <> name) tasks

(* Deadline-monotonic priority: smaller relative deadline first, ties by
   position in the task list. *)
let dm_higher_priority (ts : Model.t) (dt : Model.dtask) =
  let pos t =
    let rec go i = function
      | [] -> assert false
      | (x : Model.dtask) :: rest ->
          if x.Model.dt_name = t.Model.dt_name then i else go (i + 1) rest
    in
    go 0 ts.Model.tasks
  in
  List.filter
    (fun (o : Model.dtask) ->
      o.Model.dt_name <> dt.Model.dt_name
      && (o.Model.dt_deadline < dt.Model.dt_deadline
         || (o.Model.dt_deadline = dt.Model.dt_deadline && pos o < pos dt)))
    ts.Model.tasks

let edf_response_bounds ~m (ts : Model.t) =
  List.map
    (fun (dt : Model.dtask) ->
      ( dt.Model.dt_name,
        response_bound ~m ~interferers:(others dt.Model.dt_name ts.Model.tasks)
          dt ))
    ts.Model.tasks

let dm_response_bounds ~m (ts : Model.t) =
  List.map
    (fun (dt : Model.dtask) ->
      ( dt.Model.dt_name,
        response_bound ~m ~interferers:(dm_higher_priority ts dt) dt ))
    ts.Model.tasks

(* The claimed-schedulable region is restricted to constrained/implicit
   deadlines: with D > T a task can interfere with its own next release
   and the single-job fixpoint above does not account for that backlog.
   Arbitrary-deadline sets therefore never get a positive verdict —
   conservative, never unsound. *)
let schedulable_with bounds ~m (ts : Model.t) =
  necessary ~m ts
  && Model.taskset_class ts <> Model.Arbitrary
  && List.for_all (fun (_, r) -> r <> None) (bounds ~m ts)

let edf_schedulable ~m ts = schedulable_with edf_response_bounds ~m ts
let dm_schedulable ~m ts = schedulable_with dm_response_bounds ~m ts
