(** Long-paths response-time bound for a sporadic DAG task on [m]
    identical processors, after He, Sun, Guan et al. (arXiv 2211.08800).

    The classic single-path (Graham) bound charges all work off one
    critical path against the [m] processors:
    [R <= len + ceil((vol - len) / m)] — see {!graham}.  The long-paths
    refinement decomposes the DAG into vertex-disjoint paths greedily
    (heaviest first, so the first is a critical path) and schedules the
    task by path priority: {!bound} is the makespan of the
    work-conserving list schedule that always prefers vertices of
    heavier paths.  Two facts make it a differential oracle:

    - it is the makespan of an {e actual} schedule, so it never
      undercuts the exact branch-and-bound optimum, and
    - it is work-conserving, so Graham's argument caps it by the
      single-path bound.

    Hence [exact <= bound <= graham] unconditionally — the sandwich legs
    the qcheck suite pins on random instances.  The closed-form
    long-paths expression [len_1 + ceil((vol - sum len_i) / m)] is also
    exposed ({!value}) for tightness comparison in the benchmarks; note
    it is an estimate, not a per-schedule guarantee.

    Blind spots, as with the other baselines: resources, messages and
    processor types are ignored; vertices run non-preemptively. *)

type tie = Small_index | Large_index | Heavy | Light
(** Deterministic preference among equal-length path extensions; the
    canonical bound uses [Small_index], {!Baselines.Multi_path} takes
    the best over several. *)

val graham : m:int -> Recurrent.Model.dtask -> int
(** The classic single-path bound [len + ceil((vol - len) / m)].
    @raise Invalid_argument when [m <= 0]. *)

val paths : m:int -> Recurrent.Model.dtask -> int list
(** Greedy vertex-disjoint path lengths, heaviest first (at most [m]);
    the head is the critical-path length. *)

val paths_with : tie:tie -> m:int -> Recurrent.Model.dtask -> int list

val value : m:int -> Recurrent.Model.dtask -> int list -> int
(** The closed-form long-paths expression for a disjoint family:
    [len_1 + ceil(max 0 (vol - sum) / m)]. *)

val makespan_with : tie:tie -> m:int -> Recurrent.Model.dtask -> int
(** Makespan of the long-path-priority list schedule under the given
    tie-break. *)

val bound : m:int -> Recurrent.Model.dtask -> int
(** [makespan_with ~tie:Small_index]: satisfies
    [exact makespan <= bound <= graham]. *)
