(** Feasibility and schedulability tests for sporadic DAG task sets on
    [m] identical processors, after Bonifaci, Marchetti-Spaccamela,
    Stiller and Wiese (arXiv 1212.2778).

    Three verdicts, from weakest premise to strongest:

    - {!necessary}: conditions {e every} scheduler needs — each critical
      path fits its relative deadline ([len_i <= D_i]), each task's work
      fits the window's capacity ([vol_i <= m * D_i]), and the total
      utilisation fits the platform ([sum vol_i / T_i <= m]).  A set
      failing any of these is infeasible outright.
    - {!edf_schedulable}: a sufficient response-time test for global
      EDF — per task, the smallest fixpoint of
      [R = len + ceil((vol - len + sum_{j<>i} W_j(R)) / m)] with the
      conservative interfering workload
      [W_j(t) = (floor((t + D_j) / T_j) + 1) * vol_j] must stay within
      the deadline.
    - {!dm_schedulable}: the same fixpoint under deadline-monotonic
      priorities (interference from higher-priority tasks only, smaller
      relative deadline first).  Since the interferer set is a subset of
      EDF's, [edf_schedulable] implies [dm_schedulable] — a pessimism
      ordering of the {e tests} (checked in the suite), not a statement
      about the schedulers.

    Positive verdicts are restricted to constrained/implicit deadline
    sets; arbitrary-deadline sets are answered conservatively ([false])
    because the single-job fixpoint ignores self-interference.  Identical
    processors only — resources, messages and processor types are the
    documented blind spot, as with the other baselines. *)

val necessary : m:int -> Recurrent.Model.t -> bool
(** [false] means provably infeasible on [m] processors for any
    scheduler.  @raise Invalid_argument when [m <= 0]. *)

val edf_schedulable : m:int -> Recurrent.Model.t -> bool
(** [true] means every legal sporadic arrival sequence meets all
    deadlines under global preemptive EDF — validated in the suite
    against the unit-quantum EDF simulator on the unrolled hyperperiod. *)

val dm_schedulable : m:int -> Recurrent.Model.t -> bool

val edf_response_bounds :
  m:int -> Recurrent.Model.t -> (string * int option) list
(** Per task, the EDF response-time fixpoint, or [None] when it escapes
    the deadline (no claim). *)

val dm_response_bounds :
  m:int -> Recurrent.Model.t -> (string * int option) list
