open Recurrent

let ties = He_long_paths.[ Small_index; Large_index; Heavy; Light ]

let families ~m dt =
  List.map (fun tie -> He_long_paths.paths_with ~tie ~m dt) ties

let bound ~m (dt : Model.dtask) =
  List.fold_left
    (fun acc tie -> min acc (He_long_paths.makespan_with ~tie ~m dt))
    (He_long_paths.bound ~m dt)
    ties
