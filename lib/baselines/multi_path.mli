(** Multi-path response-time bound (arXiv 2310.15471): instead of one
    long-path decomposition, schedule under {e several} deterministic
    decompositions (one per {!He_long_paths.tie} preference) and keep
    the best makespan.

    Each candidate is a valid work-conserving schedule, so the minimum
    still upper-bounds the exact makespan; and since the canonical
    decomposition is among the candidates, the multi-path bound never
    exceeds the long-paths bound — the dominance chain
    [exact <= multi_path <= long_paths <= graham] of the differential
    sandwich. *)

val families : m:int -> Recurrent.Model.dtask -> int list list
(** The candidate disjoint-path families (lengths, heaviest first). *)

val bound : m:int -> Recurrent.Model.dtask -> int
(** @raise Invalid_argument when [m <= 0]. *)
