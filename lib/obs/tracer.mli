(** Span-based tracer and analysis counters.

    A [Tracer.t] collects two kinds of telemetry from an analysis run:

    - {e spans} — named, timed intervals opened with {!with_span},
      keyed by the domain ([tid]) they ran on.  Spans on one domain are
      well-nested by construction ([with_span] is lexically scoped and
      exception-safe), so a trace renders as a flame graph; and

    - {e counters} — monotonic integers ({!counter} lists the glossary)
      bumped with {!add}, plus a per-worker table of chunk claims fed by
      the domain pool ({!record_chunk}).

    Instrumented code receives the tracer as an optional argument
    defaulting to {!null}, whose operations reduce to a single branch
    and allocate nothing — the hot path is unchanged when tracing is
    off, and a traced run produces bit-identical analysis results
    (counters and spans are write-only telemetry).

    Thread-safety: counters are atomics; the event list and the
    per-worker table are mutex-protected; a single tracer may be shared
    by every domain of a pool run. *)

(** Counter glossary (see docs/OBSERVABILITY.md for the invariants):

    - [Tasks_scanned]: sum over executed candidate-interval scans of the
      number of tasks in the scanned partition block.
    - [Candidate_intervals]: number of [(t1, t2)] candidate interval
      pairs the scan plan contains, counted when the plan is built.
    - [Theta_evals]: number of Theta-kernel evaluations actually
      executed — equals [Candidate_intervals] exactly when no deadline
      cut the scan short.
    - [Chunks_claimed]: work-queue chunks claimed (pool workers and the
      inline path alike).
    - [Deadline_cancels]: jobs abandoned because a [?deadline_ns]
      budget expired.
    - [Cache_hits]: partition-block scan results served from an
      incremental-analysis cache instead of being rescanned (blocks of
      wholesale-reused resources included) — see [Rtlb.Incremental].
    - [Cone_tasks]: per-direction EST/LCT recomputations an incremental
      query performed (a task recomputed in both directions counts
      twice); [0] on cold runs.
    - [Worker_errors]: work-item bodies that raised inside the domain
      pool — the first failure of a job plus every suppressed one (see
      [Rtlb_par.Pool.Worker_failures]).
    - [Retries]: work items re-executed by the supervisor after a
      transient failure ([Rtlb_par.Supervisor]); at least the number of
      transient faults that fired when the run completed.
    - [Worker_restarts]: worker domains respawned after a mid-run death
      ([Rtlb_par.Pool.heal]).
    - [Checkpoints_written]: checkpoint files written (atomically) by a
      resumable sweep or benchmark.
    - [Resumes]: samples served from a validated checkpoint instead of
      being recomputed.
    - [Requests_admitted]: serve-daemon requests accepted into the
      bounded work queue ([Rtlb_serve.Server]).
    - [Requests_rejected]: serve-daemon frames refused with a
      structured error before any analysis ran — malformed frames,
      protocol errors, overload shedding, drain refusals.
    - [Evictions]: warm incremental handles evicted from the
      serve-daemon's fingerprint-keyed LRU cache (capacity pressure or
      crash-isolation drops).
    - [Degraded_replies]: successful serve-daemon replies whose
      supervised execution was less than a clean full-parallel run
      (retries exhausted into the degradation ladder).
    - [Coalesced_queries]: serve-daemon what-if queries that rode on
      another compatible query's batch (same engine and application
      text) instead of dequeuing separately — a batch of [n] bumps this
      by [n - 1].
    - [Quota_rejections]: serve-daemon frames refused with
      [S307 quota_exceeded] because the requesting tenant's token
      bucket was empty (also counted in [Requests_rejected]).
    - [Server_restarts]: serve-daemon child processes respawned by the
      watchdog after an abnormal exit ([Rtlb_serve.Watchdog]); a
      restarted child also reports its own generation number here.
    - [Journal_replays]: warm handles rebuilt from the warm-state
      journal after a (re)start ([Rtlb_serve.Journal]) — background
      rehydration, not client traffic.
    - [Breaker_opens]: circuit-breaker transitions to the open state
      (an instance fingerprint repeatedly failing analysis;
      [Rtlb_serve.Breaker]).
    - [Breaker_probes]: half-open probe requests a breaker let through
      to test whether the instance recovered.
    - [Failovers]: client-side reconnects after a lost connection
      ([Rtlb_serve.Client.Failover]) — each one resends only the
      requests whose replies were never received.
    - [Cold_builds]: serve-daemon requests that had to build a fresh
      incremental handle because the warm cache had no entry for the
      instance fingerprint (journal rehydration counts too — measure
      warmth with deltas). *)
type counter =
  | Tasks_scanned
  | Candidate_intervals
  | Theta_evals
  | Chunks_claimed
  | Deadline_cancels
  | Cache_hits
  | Cone_tasks
  | Worker_errors
  | Retries
  | Worker_restarts
  | Checkpoints_written
  | Resumes
  | Requests_admitted
  | Requests_rejected
  | Evictions
  | Degraded_replies
  | Coalesced_queries
  | Quota_rejections
  | Server_restarts
  | Journal_replays
  | Breaker_opens
  | Breaker_probes
  | Failovers
  | Cold_builds

val counter_name : counter -> string
(** Stable snake_case name, used by stats tables and JSON output. *)

val all_counters : counter list
(** Every counter, in glossary order. *)

(** One recorded span: a Chrome trace_event "complete" event. *)
type event = {
  ev_name : string;
  ev_tid : int;  (** Domain id the span ran on. *)
  ev_ts_ns : int64;  (** Start, {!Clock} time base. *)
  ev_dur_ns : int64;
}

type t

val null : t
(** The disabled tracer: every operation is a no-op costing one branch,
    and [with_span null name f] is exactly [f ()].  This is the default
    everywhere a [?tracer] is accepted. *)

val make : ?clock:Clock.t -> unit -> t
(** A live tracer.  [clock] defaults to {!Clock.monotonic}; golden
    tests pass {!Clock.fake}. *)

val enabled : t -> bool
(** [false] exactly for {!null}.  Instrumentation uses this to skip
    computing counter increments when tracing is off. *)

val clock : t -> Clock.t

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span.  The span is recorded
    when [f] returns {e or raises} (the exception is re-raised), so
    span trees are always well-nested per domain. *)

val add : t -> counter -> int -> unit
(** Bump a counter.  No-op on {!null} or when the increment is 0. *)

val record_chunk : t -> items:int -> unit
(** Called by the domain pool after executing one claimed chunk:
    increments [Chunks_claimed] and credits the calling domain with
    [items] executed work-item bodies in the per-worker table.  [items]
    counts bodies that ran to completion, so per-worker totals stay
    consistent under fault injection and deadline cancellation. *)

val tid : unit -> int
(** The calling domain's id, as used for [ev_tid]. *)

val events : t -> event list
(** Recorded spans, in completion order.  Empty for {!null}. *)

val counter : t -> counter -> int

val worker_stats : t -> (int * int * int) list
(** Per-worker [(tid, chunks_claimed, items_executed)], sorted by tid. *)
