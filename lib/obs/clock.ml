external monotonic_ns : unit -> int64 = "rtlb_obs_monotonic_ns"

type fake = { lock : Mutex.t; mutable now : int64; step : int64 }
type t = Monotonic | Fake of fake

let monotonic = Monotonic

let fake ?(start = 0L) ?(step = 1_000L) () =
  Fake { lock = Mutex.create (); now = start; step }

let now_ns = function
  | Monotonic -> monotonic_ns ()
  | Fake f ->
      Mutex.lock f.lock;
      let v = f.now in
      f.now <- Int64.add f.now f.step;
      Mutex.unlock f.lock;
      v

let is_fake = function Fake _ -> true | Monotonic -> false
