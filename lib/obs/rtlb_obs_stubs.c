/* Monotonic clock stub for Rtlb_obs.Clock.

   CLOCK_MONOTONIC is immune to NTP steps and settimeofday, which is
   the whole point: the analysis deadlines and trace timestamps must
   never jump backwards or leap forward.  (gettimeofday, which the
   domain pool used before this stub existed, is wall-clock time and
   does both.) */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value rtlb_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                         + (int64_t)ts.tv_nsec);
}
