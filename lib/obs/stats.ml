type span_line = { sl_name : string; sl_count : int; sl_total_ns : int64 }

type t = {
  spans : span_line list;
  counters : (string * int) list;
  workers : (int * int * int) list;
}

let of_tracer tracer =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (ev : Tracer.event) ->
      let count, total =
        Option.value
          (Hashtbl.find_opt by_name ev.Tracer.ev_name)
          ~default:(0, 0L)
      in
      Hashtbl.replace by_name ev.Tracer.ev_name
        (count + 1, Int64.add total ev.Tracer.ev_dur_ns))
    (Tracer.events tracer);
  let spans =
    Hashtbl.fold
      (fun name (count, total) acc ->
        { sl_name = name; sl_count = count; sl_total_ns = total } :: acc)
      by_name []
    |> List.sort (fun a b -> String.compare a.sl_name b.sl_name)
  in
  {
    spans;
    counters =
      List.map
        (fun c -> (Tracer.counter_name c, Tracer.counter tracer c))
        Tracer.all_counters;
    workers = Tracer.worker_stats tracer;
  }

let span_total_ns t name =
  match List.find_opt (fun l -> String.equal l.sl_name name) t.spans with
  | Some l -> l.sl_total_ns
  | None -> 0L
