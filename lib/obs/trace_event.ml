(* The writer emits JSON by hand: this library sits below Rtfmt, so it
   cannot reuse Rtfmt.Json — and the trace_event subset is tiny (string
   and integer fields only, one event object per line). *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome expects ts/dur in microseconds. *)
let us ns = Int64.to_int (Int64.div ns 1_000L)

let to_string ?(process_name = "rtlb") tracer =
  let events =
    List.sort
      (fun (a : Tracer.event) (b : Tracer.event) ->
        compare
          (a.Tracer.ev_ts_ns, a.Tracer.ev_tid, a.Tracer.ev_name)
          (b.Tracer.ev_ts_ns, b.Tracer.ev_tid, b.Tracer.ev_name))
      (Tracer.events tracer)
  in
  let tids =
    List.sort_uniq compare
      (List.map (fun (e : Tracer.event) -> e.Tracer.ev_tid) events
      @ List.map (fun (tid, _, _) -> tid) (Tracer.worker_stats tracer))
  in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf "    ";
    Buffer.add_string buf line
  in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n";
  emit
    (Printf.sprintf
       "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"ts\": 0, \"name\": \
        \"process_name\", \"args\": {\"name\": \"%s\"}}"
       (escape process_name));
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"ts\": 0, \"name\": \
            \"thread_name\", \"args\": {\"name\": \"domain %d\"}}"
           tid tid))
    tids;
  List.iter
    (fun (e : Tracer.event) ->
      emit
        (Printf.sprintf
           "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \"dur\": \
            %d, \"cat\": \"rtlb\", \"name\": \"%s\"}"
           e.Tracer.ev_tid
           (us e.Tracer.ev_ts_ns)
           (us e.Tracer.ev_dur_ns)
           (escape e.Tracer.ev_name)))
    events;
  (* Final counter snapshot, stamped at the end of the last span. *)
  let end_ts =
    List.fold_left
      (fun acc (e : Tracer.event) ->
        max acc (us (Int64.add e.Tracer.ev_ts_ns e.Tracer.ev_dur_ns)))
      0 events
  in
  emit
    (Printf.sprintf
       "{\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": %d, \"name\": \
        \"counters\", \"args\": {%s}}"
       end_ts
       (String.concat ", "
          (List.map
             (fun c ->
               Printf.sprintf "\"%s\": %d" (Tracer.counter_name c)
                 (Tracer.counter tracer c))
             Tracer.all_counters)));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
