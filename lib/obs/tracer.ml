type counter =
  | Tasks_scanned
  | Candidate_intervals
  | Theta_evals
  | Chunks_claimed
  | Deadline_cancels
  | Cache_hits
  | Cone_tasks
  | Worker_errors
  | Retries
  | Worker_restarts
  | Checkpoints_written
  | Resumes
  | Requests_admitted
  | Requests_rejected
  | Evictions
  | Degraded_replies
  | Coalesced_queries
  | Quota_rejections
  | Server_restarts
  | Journal_replays
  | Breaker_opens
  | Breaker_probes
  | Failovers
  | Cold_builds

let n_counters = 24

let counter_index = function
  | Tasks_scanned -> 0
  | Candidate_intervals -> 1
  | Theta_evals -> 2
  | Chunks_claimed -> 3
  | Deadline_cancels -> 4
  | Cache_hits -> 5
  | Cone_tasks -> 6
  | Worker_errors -> 7
  | Retries -> 8
  | Worker_restarts -> 9
  | Checkpoints_written -> 10
  | Resumes -> 11
  | Requests_admitted -> 12
  | Requests_rejected -> 13
  | Evictions -> 14
  | Degraded_replies -> 15
  | Coalesced_queries -> 16
  | Quota_rejections -> 17
  | Server_restarts -> 18
  | Journal_replays -> 19
  | Breaker_opens -> 20
  | Breaker_probes -> 21
  | Failovers -> 22
  | Cold_builds -> 23

let counter_name = function
  | Tasks_scanned -> "tasks_scanned"
  | Candidate_intervals -> "candidate_intervals"
  | Theta_evals -> "theta_evals"
  | Chunks_claimed -> "chunks_claimed"
  | Deadline_cancels -> "deadline_cancellations"
  | Cache_hits -> "cache_hits"
  | Cone_tasks -> "cone_tasks"
  | Worker_errors -> "worker_errors"
  | Retries -> "retries"
  | Worker_restarts -> "worker_restarts"
  | Checkpoints_written -> "checkpoints_written"
  | Resumes -> "resumes"
  | Requests_admitted -> "requests_admitted"
  | Requests_rejected -> "requests_rejected"
  | Evictions -> "evictions"
  | Degraded_replies -> "degraded_replies"
  | Coalesced_queries -> "coalesced_queries"
  | Quota_rejections -> "quota_rejections"
  | Server_restarts -> "server_restarts"
  | Journal_replays -> "journal_replays"
  | Breaker_opens -> "breaker_opens"
  | Breaker_probes -> "breaker_probes"
  | Failovers -> "failovers"
  | Cold_builds -> "cold_builds"

let all_counters =
  [
    Tasks_scanned; Candidate_intervals; Theta_evals; Chunks_claimed;
    Deadline_cancels; Cache_hits; Cone_tasks; Worker_errors; Retries;
    Worker_restarts; Checkpoints_written; Resumes; Requests_admitted;
    Requests_rejected; Evictions; Degraded_replies; Coalesced_queries;
    Quota_rejections; Server_restarts; Journal_replays; Breaker_opens;
    Breaker_probes; Failovers; Cold_builds;
  ]

type event = {
  ev_name : string;
  ev_tid : int;
  ev_ts_ns : int64;
  ev_dur_ns : int64;
}

type worker_stat = { mutable ws_chunks : int; mutable ws_items : int }

type t = {
  enabled : bool;
  t_clock : Clock.t;
  lock : Mutex.t;
  mutable events_rev : event list;
  counters : int Atomic.t array;
  workers : (int, worker_stat) Hashtbl.t;
}

(* The single disabled tracer.  Its arrays are empty: every accessor
   below branches on [enabled] before touching them. *)
let null =
  {
    enabled = false;
    t_clock = Clock.monotonic;
    lock = Mutex.create ();
    events_rev = [];
    counters = [||];
    workers = Hashtbl.create 1;
  }

let make ?(clock = Clock.monotonic) () =
  {
    enabled = true;
    t_clock = clock;
    lock = Mutex.create ();
    events_rev = [];
    counters = Array.init n_counters (fun _ -> Atomic.make 0);
    workers = Hashtbl.create 8;
  }

let enabled t = t.enabled
let clock t = t.t_clock
let tid () = (Domain.self () :> int)

let add t c n =
  if t.enabled && n <> 0 then
    ignore (Atomic.fetch_and_add t.counters.(counter_index c) n)

let counter t c =
  if t.enabled then Atomic.get t.counters.(counter_index c) else 0

let record_chunk t ~items =
  if t.enabled then begin
    ignore (Atomic.fetch_and_add t.counters.(counter_index Chunks_claimed) 1);
    let id = tid () in
    Mutex.lock t.lock;
    let ws =
      match Hashtbl.find_opt t.workers id with
      | Some ws -> ws
      | None ->
          let ws = { ws_chunks = 0; ws_items = 0 } in
          Hashtbl.add t.workers id ws;
          ws
    in
    ws.ws_chunks <- ws.ws_chunks + 1;
    ws.ws_items <- ws.ws_items + items;
    Mutex.unlock t.lock
  end

let with_span t name f =
  if not t.enabled then f ()
  else begin
    let id = tid () in
    let t0 = Clock.now_ns t.t_clock in
    let finish () =
      let t1 = Clock.now_ns t.t_clock in
      let ev =
        { ev_name = name; ev_tid = id; ev_ts_ns = t0;
          ev_dur_ns = Int64.sub t1 t0 }
      in
      Mutex.lock t.lock;
      t.events_rev <- ev :: t.events_rev;
      Mutex.unlock t.lock
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let events t =
  Mutex.lock t.lock;
  let evs = List.rev t.events_rev in
  Mutex.unlock t.lock;
  evs

let worker_stats t =
  Mutex.lock t.lock;
  let rows =
    Hashtbl.fold
      (fun id ws acc -> (id, ws.ws_chunks, ws.ws_items) :: acc)
      t.workers []
  in
  Mutex.unlock t.lock;
  List.sort compare rows
