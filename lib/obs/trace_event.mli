(** Chrome [trace_event] JSON sink.

    {!to_string} serialises a tracer into the JSON object format that
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly: a ["traceEvents"] array of metadata ([ph = "M"]: process
    and thread names), complete spans ([ph = "X"] with [ts]/[dur] in
    microseconds) and a final counter snapshot ([ph = "C"]).  Every
    event carries the [ph]/[ts]/[pid]/[tid] fields the viewers require.

    The emitted text is plain integer JSON — parseable by
    [Rtfmt.Json.parse] — and events are sorted by (start, tid, name),
    so a fake-clock trace is byte-deterministic. *)

val to_string : ?process_name:string -> Tracer.t -> string
(** [process_name] defaults to ["rtlb"]. *)
