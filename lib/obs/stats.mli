(** In-memory summary sink: aggregate a tracer's spans, counters and
    per-worker chunk table into plain data that reports (CLI `--stats`,
    bench breakdowns, JSON output) can render.

    All orderings are deterministic — span lines sorted by name,
    counters in glossary order, workers by tid — so a summary of a
    fake-clock run is byte-stable. *)

type span_line = {
  sl_name : string;
  sl_count : int;  (** Spans recorded under this name. *)
  sl_total_ns : int64;  (** Sum of their durations. *)
}

type t = {
  spans : span_line list;  (** Sorted by name. *)
  counters : (string * int) list;
      (** Every counter of the glossary, {!Tracer.all_counters} order. *)
  workers : (int * int * int) list;
      (** Per-worker [(tid, chunks_claimed, items_executed)]. *)
}

val of_tracer : Tracer.t -> t

val span_total_ns : t -> string -> int64
(** Total duration recorded under a span name ([0L] when absent). *)
