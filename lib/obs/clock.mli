(** Injectable monotonic time source.

    Everything in the observability layer (span timestamps, stats
    durations) and every time budget in the analysis engine
    ([?deadline_ns]) reads time through a [Clock.t].  Production code
    uses {!monotonic} — [clock_gettime(CLOCK_MONOTONIC)] via a C stub —
    which cannot jump when NTP steps the wall clock.  Tests inject
    {!fake}, a deterministic counter, so golden trace outputs are
    byte-stable. *)

type t

val monotonic : t
(** The OS monotonic clock.  The epoch is unspecified (boot time on
    Linux); only differences and comparisons against values from the
    same clock are meaningful. *)

val fake : ?start:int64 -> ?step:int64 -> unit -> t
(** A deterministic clock for tests: the first read returns [start]
    (default [0L]) and every read advances it by [step] (default
    [1_000L] ns, i.e. one microsecond per observation).  Reads are
    serialised by a mutex, so a fake clock shared across domains still
    hands out distinct, increasing timestamps — though the interleaving
    is only deterministic single-domain. *)

val now_ns : t -> int64
(** Current time in nanoseconds. *)

val is_fake : t -> bool
