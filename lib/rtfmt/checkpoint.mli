(** Fingerprint-keyed checkpoint files for crash-safe resume of long
    runs (sensitivity sweeps, bench experiments).

    A checkpoint records three things: the {e kind} of run that wrote
    it (["sensitivity"], ["bench-parallel"], ...), the {e instance
    fingerprint} ({!Rtlb.Incremental.instance_fingerprint}) of the
    analysed input, and an ordered [key -> payload] map of completed
    work items.  Writers call {!save} after each completed item (or
    batch); a resumed process {!load}s the file, {!validate}s kind and
    fingerprint, and skips every item whose key is present.

    Staleness rules: a checkpoint is only ever reused when {e both} the
    kind and the fingerprint match.  Since the fingerprint digests the
    full instance — every task field, the weighted graph, the system
    model — an edited input can never silently splice stale samples
    into fresh output; it is reported and recomputed from scratch.

    Durability: writes go through {!Atomic_io.write_atomic}, so a
    SIGKILL at any point leaves a complete (possibly one-item-older)
    checkpoint, and resumed output is bit-identical to an uninterrupted
    run (property-tested in the chaos suite). *)

type t

val version : int
(** Format version stamped into every file; {!load} rejects others. *)

val create : kind:string -> fingerprint:string -> t
(** An empty checkpoint for a run over the given instance. *)

val kind : t -> string
val fingerprint : t -> string

val entries : t -> (string * Json.t) list
(** Completed items in completion order. *)

val find : t -> string -> Json.t option

val add : t -> key:string -> Json.t -> t
(** Appends (or replaces) one completed item. *)

val save : ?tracer:Rtlb_obs.Tracer.t -> string -> t -> unit
(** Atomic write of the whole checkpoint; bumps the
    [Checkpoints_written] counter and then calls
    {!Rtlb_par.Chaos.on_checkpoint} (so an armed [killckpt@n] plan
    kills the process {e after} the n-th durable write — the exact
    scenario resume must survive). *)

val load : string -> (t option, string) result
(** [Ok None] when the file does not exist (a fresh run), [Ok (Some t)]
    for a well-formed checkpoint, [Error reason] for a corrupt or
    wrong-version file.  Callers treat [Error] like staleness: warn and
    recompute. *)

val validate : kind:string -> fingerprint:string -> t -> (unit, string) result
(** Staleness check; the [Error] carries a human-readable reason
    (kind mismatch, or instance fingerprint mismatch). *)

val remove : string -> unit
(** Best-effort delete (run completed; the checkpoint is spent). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** {2 Sensitivity sample payloads}

    Encoders used by [rtlb sensitivity --checkpoint] and the chaos
    tests.  Factors are keyed by their [%h] hex float literal so the
    exact bit pattern round-trips — a resumed sweep matches checkpoint
    samples to requested factors by float {e equality}, which is what
    makes resumed output bit-identical. *)

val factor_key : float -> string

val sample_to_json : Rtlb.Sensitivity.sample -> Json.t

val sample_of_json : Json.t -> (Rtlb.Sensitivity.sample, string) result
