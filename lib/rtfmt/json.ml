type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun k item ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun k (name, value) ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape name);
            Buffer.add_string buf "\": ";
            go (depth + 1) value)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail msg = raise (Parse_error msg)

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail (Printf.sprintf "expected %c, found %c at %d" ch x c.pos)
  | None -> fail (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail (Printf.sprintf "bad literal at %d" c.pos)

(* UTF-8 encoding of a Unicode scalar value (the \uXXXX decoder below
   combines surrogate pairs first, so supplementary planes land here as
   code points up to U+10FFFF). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let is_hex_digit = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let parse_string_body c =
  let buf = Buffer.create 16 in
  (* The four hex digits after a [\u] already consumed by the caller. *)
  let hex4 () =
    if c.pos + 4 > String.length c.text then fail "bad \\u escape";
    let hex = String.sub c.text c.pos 4 in
    if not (String.for_all is_hex_digit hex) then fail "bad \\u escape";
    c.pos <- c.pos + 4;
    int_of_string ("0x" ^ hex)
  in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance c;
            let code = hex4 () in
            let code =
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: RFC 8259 requires an escaped low
                   surrogate right behind it. *)
                if
                  c.pos + 2 <= String.length c.text
                  && c.text.[c.pos] = '\\'
                  && c.text.[c.pos + 1] = 'u'
                then begin
                  c.pos <- c.pos + 2;
                  let low = hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then
                    fail "lone high surrogate in \\u escape"
                  else 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                end
                else fail "lone high surrogate in \\u escape"
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail "lone low surrogate in \\u escape"
              else code
            in
            add_utf8 buf code;
            go ()
        | _ -> fail "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "empty input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          expect c '"';
          let name = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (name, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (f :: acc)
          | Some '}' ->
              advance c;
              List.rev (f :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') ->
      let start = c.pos in
      if peek c = Some '-' then advance c;
      let rec digits () =
        match peek c with
        | Some '0' .. '9' ->
            advance c;
            digits ()
        | _ -> ()
      in
      digits ();
      let s = String.sub c.text start (c.pos - start) in
      (match int_of_string_opt s with
      | Some v -> Int v
      | None -> fail ("bad number " ^ s))
  | Some ch -> fail (Printf.sprintf "unexpected %c at %d" ch c.pos)

let parse text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise Not_found)
  | _ -> raise Not_found

(* ---------------- encoders ---------------- *)

let of_schedule app schedule =
  List
    (Array.to_list schedule
    |> List.map (fun (e : Sched.Schedule.entry) ->
           let task = Rtlb.App.task app e.Sched.Schedule.e_task in
           Obj
             [
               ("task", Str task.Rtlb.Task.name);
               ("start", Int e.Sched.Schedule.e_start);
               ("finish", Int (Sched.Schedule.finish app e));
               ( "host",
                 Str
                   (match e.Sched.Schedule.e_host with
                   | Sched.Schedule.On_proc (p, k) -> Printf.sprintf "%s#%d" p k
                   | Sched.Schedule.On_node (n, k) -> Printf.sprintf "%s#%d" n k)
               );
               ( "resource_units",
                 List
                   (List.map
                      (fun (r, u) ->
                        Obj [ ("resource", Str r); ("unit", Int u) ])
                      e.Sched.Schedule.e_resource_units) );
             ]))

let of_stats (s : Rtlb_obs.Stats.t) =
  Obj
    [
      ( "spans",
        List
          (List.map
             (fun (l : Rtlb_obs.Stats.span_line) ->
               Obj
                 [
                   ("name", Str l.Rtlb_obs.Stats.sl_name);
                   ("count", Int l.Rtlb_obs.Stats.sl_count);
                   ( "total_ns",
                     Int (Int64.to_int l.Rtlb_obs.Stats.sl_total_ns) );
                 ])
             s.Rtlb_obs.Stats.spans) );
      ( "counters",
        Obj
          (List.map (fun (n, v) -> (n, Int v)) s.Rtlb_obs.Stats.counters) );
      ( "workers",
        List
          (List.map
             (fun (tid, chunks, items) ->
               Obj
                 [
                   ("tid", Int tid);
                   ("chunks", Int chunks);
                   ("items", Int items);
                 ])
             s.Rtlb_obs.Stats.workers) );
    ]

let of_analysis ?stats (a : Rtlb.Analysis.t) =
  let windows =
    List
      (Array.to_list (Rtlb.App.tasks a.Rtlb.Analysis.app)
      |> List.map (fun (task : Rtlb.Task.t) ->
             let i = task.Rtlb.Task.id in
             Obj
               [
                 ("task", Str task.Rtlb.Task.name);
                 ("est", Int a.Rtlb.Analysis.windows.Rtlb.Est_lct.est.(i));
                 ("lct", Int a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct.(i));
               ]))
  in
  let name i = (Rtlb.App.task a.Rtlb.Analysis.app i).Rtlb.Task.name in
  let bounds =
    List
      (List.map
         (fun (b : Rtlb.Lower_bound.bound) ->
           Obj
             ([
                ("resource", Str b.Rtlb.Lower_bound.resource);
                ("lb", Int b.Rtlb.Lower_bound.lb);
                ( "partition",
                  List
                    (List.map
                       (fun block -> List (List.map (fun i -> Str (name i)) block))
                       b.Rtlb.Lower_bound.partition.Rtlb.Partition.blocks) );
              ]
             @
             match b.Rtlb.Lower_bound.witness with
             | None -> []
             | Some w ->
                 [
                   ( "witness",
                     Obj
                       [
                         ("t1", Int w.Rtlb.Lower_bound.w_t1);
                         ("t2", Int w.Rtlb.Lower_bound.w_t2);
                         ("theta", Int w.Rtlb.Lower_bound.w_theta);
                       ] );
                 ]))
         a.Rtlb.Analysis.bounds)
  in
  let cost =
    match a.Rtlb.Analysis.cost with
    | Rtlb.Cost.No_feasible_system e ->
        Obj [ ("model", Str "none"); ("error", Str e) ]
    | Rtlb.Cost.Shared_cost { s_terms; s_cost } ->
        Obj
          [
            ("model", Str "shared");
            ("bound", Int s_cost);
            ( "terms",
              List
                (List.map
                   (fun (r, c, lb) ->
                     Obj [ ("resource", Str r); ("unit_cost", Int c); ("lb", Int lb) ])
                   s_terms) );
          ]
    | Rtlb.Cost.Dedicated_cost d ->
        Obj
          [
            ("model", Str "dedicated");
            ("bound", Int d.Rtlb.Cost.d_cost);
            ("lp_relaxation", Str (Rat.to_string d.Rtlb.Cost.d_relaxed_cost));
            ( "nodes",
              Obj (List.map (fun (n, x) -> (n, Int x)) d.Rtlb.Cost.d_counts) );
          ]
  in
  Obj
    ([
       ("tasks", Int (Rtlb.App.n_tasks a.Rtlb.Analysis.app));
       ("windows", windows);
       ("bounds", bounds);
       ("cost", cost);
       ( "feasible_windows",
         Bool
           (match
              Rtlb.Est_lct.feasible_windows a.Rtlb.Analysis.app
                a.Rtlb.Analysis.windows
            with
           | Ok () -> true
           | Error _ -> false) );
       ("partial", Bool (Rtlb.Analysis.is_partial a));
     ]
    @
    (* Coverage only when partial: its value is timing-dependent, and
       omitting it keeps complete outputs byte-deterministic. *)
    (if Rtlb.Analysis.is_partial a then
       [
         ( "coverage_percent",
           Int
             (int_of_float
                (Float.round (100.0 *. Rtlb.Analysis.coverage a))) );
       ]
     else [])
    @
    (* Observability summary, only when the caller traced the run. *)
    match stats with None -> [] | Some s -> [ ("stats", of_stats s) ])

(* What-if output shared by `rtlb whatif --json` and the serve daemon's
   [whatif] op: per-resource bound deltas against the cached base
   analysis plus the full edited analysis (whose own ["partial"] flag
   carries budget expiry), so a served reply and the one-shot CLI are
   byte-comparable. *)
let of_whatif ~(base : Rtlb.Analysis.t) ~(edited : Rtlb.Analysis.t) =
  let lb_list (a : Rtlb.Analysis.t) =
    List.map
      (fun (b : Rtlb.Lower_bound.bound) ->
        (b.Rtlb.Lower_bound.resource, b.Rtlb.Lower_bound.lb))
      a.Rtlb.Analysis.bounds
  in
  let deltas =
    List.map2
      (fun (r, lb) (_, lb') ->
        Obj
          [
            ("resource", Str r);
            ("base_lb", Int lb);
            ("lb", Int lb');
            ("delta", Int (lb' - lb));
          ])
      (lb_list base) (lb_list edited)
  in
  Obj
    [
      ("deltas", List deltas);
      ("partial", Bool (Rtlb.Analysis.is_partial edited));
      ("edited", of_analysis edited);
    ]
