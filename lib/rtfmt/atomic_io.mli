(** Crash-safe file output.

    Every file the CLI and bench runner produce ([--trace], [--svg],
    [BENCH_*.json], checkpoints) goes through {!write_atomic}: the
    content is rendered into [path ^ ".tmp"] in the destination
    directory and the temp file is [Sys.rename]d over [path].  On a
    POSIX filesystem the rename is atomic, so a crash — or a SIGKILL
    mid-write — leaves either the previous complete file or the new
    complete file, never a truncated one.  That is the invariant the
    checkpoint/resume machinery rests on ({!Checkpoint}).

    Concurrent writers to the {e same} path are out of scope (they
    would share the temp name); distinct paths are safe. *)

val write_atomic : string -> (out_channel -> unit) -> unit
(** [write_atomic path f] calls [f] on a channel for the temp file,
    flushes, closes and renames.  If [f] raises (or the injected
    failure below fires), the temp file is removed, [path] is left
    untouched, and the exception propagates. *)

val write_string_atomic : string -> string -> unit
(** [write_atomic] of one [output_string]. *)

(** Fault injection for the regression tests: the next [n] writes fail
    with [Sys_error] {e after} [f] has run — simulating a full disk or
    a kill between write and rename — proving the destination survives
    mid-write failure. *)
module For_testing : sig
  val fail_writes : int ref
  val reset : unit -> unit
end
