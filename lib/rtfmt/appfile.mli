(** A small line-oriented text format for applications and system models,
    used by the CLI and the examples.

    {v
    # comment / blank lines are ignored
    task T1 compute=3 deadline=36 proc=P1 res=r1          # release=0 default
    task T2 compute=6 release=2 deadline=36 proc=P1 res=r1,r2 preemptive
    edge T1 T2 4                                          # message size 4
    shared P1=5 P2=4 r1=3                                 # shared model costs
    node N1 proc=P1 res=r1 cost=10                        # or dedicated nodes
    node N2 proc=P1 cost=6
    v}

    A file may declare either one [shared] line or one or more [node]
    lines (not both).  Task ids are assigned in declaration order. *)

type t = { app : Rtlb.App.t; system : Rtlb.System.t option }

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> t
(** Parse the full text of an application file.
    @raise Parse_error on malformed input — including semantic problems
      (duplicate task names, edges between undeclared tasks, self loops,
      duplicate edges, precedence cycles), each located at the offending
      source line.  Never raises [Dag.Cycle] or [Invalid_argument]. *)

val parse_file : string -> t
(** @raise Parse_error and [Sys_error]. *)

(** {1 Diagnostic (spec) parsing}

    [parse] fails fast: the first problem aborts with an exception.  The
    spec path instead tokenizes the file into {!Rtlb.Validate.task_spec} /
    {!Rtlb.Validate.edge_spec} declarations — keeping source lines and
    tolerating semantic errors — so {!check} can report {e every} problem
    at once. *)

type spec = {
  spec_tasks : Rtlb.Validate.task_spec list;
  spec_edges : Rtlb.Validate.edge_spec list;
  spec_system : Rtlb.System.t option;
  spec_source : string;  (** The original text, for the window phase. *)
}

val parse_spec : string -> spec
(** Tokenize without constructing the application.
    @raise Parse_error only on syntax-level problems (unknown directive,
      malformed [key=value], non-integer fields, missing required keys). *)

val parse_spec_file : string -> spec
(** @raise Parse_error and [Sys_error]. *)

val check : spec -> Rtlb.Validate.diag list
(** {!Rtlb.Validate.check_spec} over the declarations; when that finds no
    errors, the application is built and {!Rtlb.Validate.check_windows}
    appends the EST/LCT-phase diagnostics (with source lines; unrolled
    periodic jobs [t@k] report the line of the declaring task).  Anything
    the strict parse still rejects becomes an [E100] diagnostic — this
    function never raises on any input [parse_spec] accepts. *)

val to_string : ?system:Rtlb.System.t -> Rtlb.App.t -> string
(** Render an application (and optionally a system) in the same format;
    [parse (to_string app)] reconstructs the application. *)
