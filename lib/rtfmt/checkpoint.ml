(* Fingerprint-keyed checkpoint files for resumable long runs.  A
   checkpoint is a JSON object carrying the producing run's kind, the
   instance fingerprint (Incremental.instance_fingerprint), and an
   ordered key -> payload map of completed work items.  Writes go
   through Atomic_io, so a killed process leaves either the previous
   complete checkpoint or the new one; loads validate kind and
   fingerprint, so a checkpoint of a different (or edited) instance is
   reported stale and recomputed, never silently spliced in. *)

let version = 1

type t = {
  c_kind : string;
  c_fingerprint : string;
  c_entries : (string * Json.t) list; (* completion order, newest last *)
}

let create ~kind ~fingerprint =
  { c_kind = kind; c_fingerprint = fingerprint; c_entries = [] }

let kind t = t.c_kind
let fingerprint t = t.c_fingerprint
let entries t = t.c_entries
let find t key = List.assoc_opt key t.c_entries

let add t ~key value =
  let without = List.filter (fun (k, _) -> k <> key) t.c_entries in
  { t with c_entries = without @ [ (key, value) ] }

let to_json t =
  Json.Obj
    [
      ("checkpoint", Json.Str "rtlb");
      ("version", Json.Int version);
      ("kind", Json.Str t.c_kind);
      ("fingerprint", Json.Str t.c_fingerprint);
      ( "entries",
        Json.List
          (List.map
             (fun (k, v) -> Json.Obj [ ("key", Json.Str k); ("value", v) ])
             t.c_entries) );
    ]

let of_json j =
  let str what = function
    | Json.Str s -> Ok s
    | _ -> Error (Printf.sprintf "checkpoint: %s is not a string" what)
  in
  let field what o =
    match Json.member what o with
    | v -> Ok v
    | exception Not_found ->
        Error (Printf.sprintf "checkpoint: missing %S" what)
  in
  let ( let* ) = Result.bind in
  let* tag = Result.bind (field "checkpoint" j) (str "checkpoint") in
  let* () =
    if tag = "rtlb" then Ok ()
    else Error "checkpoint: not an rtlb checkpoint file"
  in
  let* v = field "version" j in
  let* () =
    match v with
    | Json.Int n when n = version -> Ok ()
    | Json.Int n ->
        Error
          (Printf.sprintf "checkpoint: version %d, this build reads %d" n
             version)
    | _ -> Error "checkpoint: version is not an integer"
  in
  let* c_kind = Result.bind (field "kind" j) (str "kind") in
  let* c_fingerprint = Result.bind (field "fingerprint" j) (str "fingerprint") in
  let* raw = field "entries" j in
  let* items =
    match raw with
    | Json.List l -> Ok l
    | _ -> Error "checkpoint: entries is not a list"
  in
  let* c_entries =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* key = Result.bind (field "key" item) (str "entry key") in
        let* value = field "value" item in
        Ok ((key, value) :: acc))
      (Ok []) items
  in
  Ok { c_kind; c_fingerprint; c_entries = List.rev c_entries }

let validate ~kind ~fingerprint t =
  if t.c_kind <> kind then
    Error (Printf.sprintf "checkpoint kind %S, expected %S" t.c_kind kind)
  else if t.c_fingerprint <> fingerprint then
    Error
      "stale checkpoint: instance fingerprint mismatch (the input changed \
       since the checkpoint was written)"
  else Ok ()

let save ?(tracer = Rtlb_obs.Tracer.null) path t =
  Atomic_io.write_string_atomic path (Json.to_string (to_json t));
  Rtlb_obs.Tracer.add tracer Rtlb_obs.Tracer.Checkpoints_written 1;
  (* After the rename: a simulated kill-at-checkpoint dies with the
     checkpoint durable, which is the scenario resume must survive. *)
  Rtlb_par.Chaos.on_checkpoint ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  if not (Sys.file_exists path) then Ok None
  else
    match Json.parse (read_file path) with
    | exception Json.Parse_error e ->
        Error (Printf.sprintf "%s: corrupt checkpoint: %s" path e)
    | exception Sys_error e -> Error e
    | j -> (
        match of_json j with
        | Ok t -> Ok (Some t)
        | Error e -> Error (Printf.sprintf "%s: %s" path e))

let remove path = try Sys.remove path with Sys_error _ -> ()

(* ---- sensitivity sample payloads ---------------------------------- *)

(* Factors are keyed (and stored) as %h hex float literals: the exact
   bit pattern round-trips through the file, so a resumed sweep matches
   samples to requested factors by equality, not by approximation. *)
let factor_key f = Printf.sprintf "%h" f

let sample_to_json (s : Rtlb.Sensitivity.sample) =
  Json.Obj
    [
      ("factor", Json.Str (factor_key s.Rtlb.Sensitivity.s_factor));
      ("feasible", Json.Bool s.Rtlb.Sensitivity.s_feasible);
      ( "bounds",
        Json.List
          (List.map
             (fun (r, lb) -> Json.Obj [ ("resource", Json.Str r); ("lb", Json.Int lb) ])
             s.Rtlb.Sensitivity.s_bounds) );
      ( "shared_cost",
        match s.Rtlb.Sensitivity.s_shared_cost with
        | Some c -> Json.Int c
        | None -> Json.Null );
      ("partial", Json.Bool s.Rtlb.Sensitivity.s_partial);
    ]

let sample_of_json j =
  let ( let* ) = Result.bind in
  let field what =
    match Json.member what j with
    | v -> Ok v
    | exception Not_found -> Error (Printf.sprintf "sample: missing %S" what)
  in
  let* factor =
    match field "factor" with
    | Ok (Json.Str s) -> (
        match float_of_string_opt s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "sample: bad factor %S" s))
    | Ok _ -> Error "sample: factor is not a string"
    | Error e -> Error e
  in
  let* feasible =
    match field "feasible" with
    | Ok (Json.Bool b) -> Ok b
    | Ok _ -> Error "sample: feasible is not a bool"
    | Error e -> Error e
  in
  let* bounds =
    match field "bounds" with
    | Ok (Json.List l) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match (Json.member "resource" item, Json.member "lb" item) with
            | Json.Str r, Json.Int lb -> Ok ((r, lb) :: acc)
            | _ -> Error "sample: malformed bound entry"
            | exception Not_found -> Error "sample: malformed bound entry")
          (Ok []) l
        |> Result.map List.rev
    | Ok _ -> Error "sample: bounds is not a list"
    | Error e -> Error e
  in
  let* shared_cost =
    match field "shared_cost" with
    | Ok (Json.Int c) -> Ok (Some c)
    | Ok Json.Null -> Ok None
    | Ok _ -> Error "sample: shared_cost is neither int nor null"
    | Error e -> Error e
  in
  let* partial =
    match field "partial" with
    | Ok (Json.Bool b) -> Ok b
    | Ok _ -> Error "sample: partial is not a bool"
    | Error e -> Error e
  in
  Ok
    {
      Rtlb.Sensitivity.s_factor = factor;
      s_feasible = feasible;
      s_bounds = bounds;
      s_shared_cost = shared_cost;
      s_partial = partial;
    }
