(** Formats and files: application-file parsing, JSON/table/report
    rendering, crash-safe output, and checkpoint/resume. *)

module Appfile = Appfile
module Json = Json
module Report = Report
module Stats_render = Stats_render
module Table = Table
module Atomic_io = Atomic_io
module Checkpoint = Checkpoint

let write_atomic = Atomic_io.write_atomic
let write_string_atomic = Atomic_io.write_string_atomic
