(* Atomic file writes: render into a temp file in the same directory,
   then Sys.rename over the destination.  rename(2) within one
   filesystem is atomic, so a reader (or a resumed process) only ever
   sees the old complete file or the new complete file — never a
   truncated half-write from a crashed or killed writer. *)

module For_testing = struct
  let fail_writes = ref 0
  let reset () = fail_writes := 0
end

let write_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match
    f oc;
    if !For_testing.fail_writes > 0 then begin
      decr For_testing.fail_writes;
      raise (Sys_error (tmp ^ ": injected write failure"))
    end;
    flush oc
  with
  | () ->
      close_out oc;
      Sys.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_string_atomic path s = write_atomic path (fun oc -> output_string oc s)
