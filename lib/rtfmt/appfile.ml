type t = { app : Rtlb.App.t; system : Rtlb.System.t option }

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

type pending_task = {
  pt_name : string;
  pt_compute : int;
  pt_release : int;
  pt_deadline : int;
  pt_proc : string;
  pt_demands : (string * int) list;  (* grouped units; counts may be bad *)
  pt_preemptive : bool;
  pt_period : int option;  (* period= turns the file periodic *)
  pt_line : int;
}

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let key_value line word =
  match String.index_opt word '=' with
  | Some i ->
      Some
        ( String.sub word 0 i,
          String.sub word (i + 1) (String.length word - i - 1) )
  | None ->
      if word = "preemptive" then None
      else fail line "expected key=value, got %S" word

let int_of line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: not an integer: %S" what s

(* "2xr1" -> ("r1", 2); "r1" -> ("r1", 1).  Counts are not range-checked
   here: the spec path wants to see a bad count as a diagnostic, the
   strict path rejects it in [expand_demands]. *)
let parse_counted r =
  match String.index_opt r 'x' with
  | Some i when i > 0 && int_of_string_opt (String.sub r 0 i) <> None ->
      (String.sub r (i + 1) (String.length r - i - 1),
       int_of_string (String.sub r 0 i))
  | _ -> (r, 1)

(* Group repeated names, first-occurrence order: "r1,r1,2xr2" ->
   [(r1, 2); (r2, 2)]. *)
let group_demands pairs =
  List.fold_left
    (fun acc (r, k) ->
      match List.assoc_opt r acc with
      | Some k0 -> List.map (fun (r', k') -> if r' = r then (r', k0 + k) else (r', k')) acc
      | None -> acc @ [ (r, k) ])
    [] pairs

let parse_task line words =
  match words with
  | name :: rest ->
      let preemptive = List.mem "preemptive" rest in
      let kvs = List.filter_map (key_value line) rest in
      let get k = List.assoc_opt k kvs in
      let compute =
        match get "compute" with
        | Some v -> int_of line "compute" v
        | None -> fail line "task %s: missing compute=" name
      in
      let period_opt = Option.map (int_of line "period") (get "period") in
      let deadline =
        match (get "deadline", period_opt) with
        | Some v, _ -> int_of line "deadline" v
        | None, Some p -> p
        | None, None -> fail line "task %s: missing deadline=" name
      in
      let proc =
        match get "proc" with
        | Some v -> v
        | None -> fail line "task %s: missing proc=" name
      in
      let release =
        match get "release" with Some v -> int_of line "release" v | None -> 0
      in
      let demands =
        match get "res" with
        | Some v ->
            String.split_on_char ',' v
            |> List.filter (( <> ) "")
            |> List.map parse_counted |> group_demands
        | None -> []
      in
      {
        pt_name = name;
        pt_compute = compute;
        pt_release = release;
        pt_deadline = deadline;
        pt_proc = proc;
        pt_demands = demands;
        pt_preemptive = preemptive;
        pt_period = period_opt;
        pt_line = line;
      }
  | [] -> fail line "task: missing name"

let parse_shared line words =
  let costs =
    List.map
      (fun w ->
        match key_value line w with
        | Some (r, c) -> (r, int_of line "cost" c)
        | None -> fail line "shared: expected RESOURCE=COST")
      words
  in
  try Rtlb.System.shared ~costs
  with Invalid_argument m -> fail line "shared: %s" m

let parse_node line words =
  match words with
  | name :: rest ->
      let kvs = List.filter_map (key_value line) rest in
      let proc =
        match List.assoc_opt "proc" kvs with
        | Some p -> p
        | None -> fail line "node %s: missing proc=" name
      in
      let cost =
        match List.assoc_opt "cost" kvs with
        | Some c -> int_of line "cost" c
        | None -> 1
      in
      let provides =
        match List.assoc_opt "res" kvs with
        | Some v ->
            String.split_on_char ',' v
            |> List.filter (( <> ) "")
            |> List.map parse_counted
        | None -> []
      in
      (try Rtlb.System.node_type ~name ~proc ~provides ~cost ()
       with Invalid_argument m -> fail line "node %s: %s" name m)
  | [] -> fail line "node: missing name"

(* Tokenize the whole file into declarations.  Only syntax-level problems
   raise here; semantic ones (duplicates, cycles, bad quantities, dangling
   edges) survive into the returned lists so both the strict constructor
   path and the diagnostic path can decide how to report them. *)
let scan text =
  let tasks = ref [] and edges = ref [] in
  let shared = ref None and nodes = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let words = split_words (strip_comment raw) in
      match words with
      | [] -> ()
      | "task" :: rest -> tasks := parse_task line rest :: !tasks
      | [ "edge"; src; dst; m ] ->
          edges := (line, src, dst, int_of line "message" m) :: !edges
      | "edge" :: _ -> fail line "edge: expected 'edge SRC DST SIZE'"
      | "shared" :: rest ->
          if !shared <> None then fail line "duplicate shared line";
          shared := Some (parse_shared line rest)
      | "node" :: rest -> nodes := (line, parse_node line rest) :: !nodes
      | w :: _ -> fail line "unknown directive %S" w)
    lines;
  (List.rev !tasks, List.rev !edges, !shared, List.rev !nodes)

let system_of line_of_conflict shared nodes =
  match (shared, nodes) with
  | Some _, (_ : (int * Rtlb.System.node_type) list) when nodes <> [] ->
      fail (line_of_conflict nodes) "both shared and node lines present"
  | Some s, _ -> Some s
  | None, [] -> None
  | None, nodes -> (
      try Some (Rtlb.System.dedicated (List.map snd nodes))
      with Invalid_argument m -> fail 0 "%s" m)

(* Repeat each resource name [units] times, the form Task.make expects. *)
let expand_demands pt =
  List.concat_map
    (fun (r, k) ->
      if k < 1 then fail pt.pt_line "task %s: zero resource units" pt.pt_name;
      List.init k (fun _ -> r))
    pt.pt_demands

let parse text =
  let tasks, edge_decls, shared, nodes = scan text in
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i pt ->
      if Hashtbl.mem index pt.pt_name then
        fail pt.pt_line "duplicate task name %s" pt.pt_name;
      Hashtbl.add index pt.pt_name i)
    tasks;
  (* Reject dangling endpoints, self-loops and duplicate edges here, where
     the source line is still known — Dag.create would only raise an
     unlocated Invalid_argument. *)
  let seen_edges = Hashtbl.create 16 in
  let edges =
    List.map
      (fun (line, src, dst, m) ->
        let find n =
          match Hashtbl.find_opt index n with
          | Some i -> i
          | None -> fail line "edge: unknown task %s" n
        in
        let s = find src and d = find dst in
        if s = d then fail line "edge: self loop on task %s" src;
        if Hashtbl.mem seen_edges (s, d) then
          fail line "duplicate edge %s -> %s" src dst;
        Hashtbl.add seen_edges (s, d) ();
        (line, s, d, m))
      edge_decls
  in
  let cycle_error ids =
    (* Map the Dag.Cycle payload back to names and the earliest source
       line of an edge on the cycle. *)
    let name i = (List.nth tasks i).pt_name in
    let names = List.map name ids in
    let pairs =
      match ids with
      | [] -> []
      | first :: _ ->
          let rec consecutive = function
            | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
            | [ last ] -> [ (last, first) ]
            | [] -> []
          in
          consecutive ids
    in
    let line =
      List.fold_left
        (fun acc (l, s, d, _) ->
          if List.mem (s, d) pairs then min acc l else acc)
        max_int edges
    in
    let line = if line = max_int then 0 else line in
    fail line "precedence cycle: %s"
      (String.concat " -> " (names @ [ List.nth names 0 ]))
  in
  let periodic = List.exists (fun pt -> pt.pt_period <> None) tasks in
  let app =
    if periodic then begin
      (match List.find_opt (fun pt -> pt.pt_period = None) tasks with
      | Some pt ->
          fail pt.pt_line
            "task %s: mixing periodic and one-shot tasks is not supported"
            pt.pt_name
      | None -> ());
      let ptasks =
        List.map
          (fun pt ->
            try
              Rtlb.Periodic.ptask ~name:pt.pt_name
                ~period:(Option.get pt.pt_period) ~offset:pt.pt_release
                ~compute:pt.pt_compute ~deadline:pt.pt_deadline
                ~proc:pt.pt_proc ~resources:(expand_demands pt)
                ~preemptive:pt.pt_preemptive ()
            with Invalid_argument m -> fail pt.pt_line "task %s: %s" pt.pt_name m)
          tasks
      in
      let name i = (List.nth tasks i).pt_name in
      let pedges = List.map (fun (_, s, d, m) -> (name s, name d, m)) edges in
      match Rtlb.Periodic.unroll ~tasks:ptasks ~edges:pedges () with
      | app -> app
      | exception Invalid_argument m -> fail 0 "%s" m
      | exception Dag.Cycle _ -> fail 0 "precedence cycle in task graph"
    end
    else begin
      let task_list =
        List.mapi
          (fun i pt ->
            try
              Rtlb.Task.make ~id:i ~name:pt.pt_name ~compute:pt.pt_compute
                ~release:pt.pt_release ~deadline:pt.pt_deadline ~proc:pt.pt_proc
                ~resources:(expand_demands pt) ~preemptive:pt.pt_preemptive ()
            with Invalid_argument m -> fail pt.pt_line "task %s: %s" pt.pt_name m)
          tasks
      in
      let edge_list = List.map (fun (_, s, d, m) -> (s, d, m)) edges in
      match Rtlb.App.make ~tasks:task_list ~edges:edge_list with
      | app -> app
      | exception Invalid_argument m -> fail 0 "%s" m
      | exception Dag.Cycle ids -> cycle_error ids
    end
  in
  let line_of_conflict nodes =
    match nodes with (l, _) :: _ -> l | [] -> 0
  in
  let system = system_of line_of_conflict shared nodes in
  { app; system }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* ---------------- diagnostic (spec) path ---------------- *)

type spec = {
  spec_tasks : Rtlb.Validate.task_spec list;
  spec_edges : Rtlb.Validate.edge_spec list;
  spec_system : Rtlb.System.t option;
  spec_source : string;
}

let parse_spec text =
  let tasks, edges, shared, nodes = scan text in
  let line_of_conflict nodes =
    match nodes with (l, _) :: _ -> l | [] -> 0
  in
  let system = system_of line_of_conflict shared nodes in
  {
    spec_tasks =
      List.map
        (fun pt ->
          {
            Rtlb.Validate.ts_name = pt.pt_name;
            ts_compute = pt.pt_compute;
            ts_release = pt.pt_release;
            ts_deadline = pt.pt_deadline;
            ts_proc = pt.pt_proc;
            ts_demands = pt.pt_demands;
            ts_preemptive = pt.pt_preemptive;
            ts_period = pt.pt_period;
            ts_line = Some pt.pt_line;
          })
        tasks;
    spec_edges =
      List.map
        (fun (line, src, dst, m) ->
          {
            Rtlb.Validate.es_src = src;
            es_dst = dst;
            es_message = m;
            es_line = Some line;
          })
        edges;
    spec_system = system;
    spec_source = text;
  }

let parse_spec_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_spec text

let e100 line m =
  {
    Rtlb.Validate.d_code = "E100";
    d_severity = Rtlb.Validate.Error;
    d_subject = "application";
    d_message = m;
    d_line = (if line > 0 then Some line else None);
  }

let check spec =
  let diags =
    Rtlb.Validate.check_spec ~system:spec.spec_system ~tasks:spec.spec_tasks
      ~edges:spec.spec_edges
  in
  if Rtlb.Validate.has_errors diags then diags
  else
    (* The spec phase found nothing fatal, so the strict parse is expected
       to succeed; anything it still rejects surfaces as E100 rather than
       an exception. *)
    match parse spec.spec_source with
    | { app; system } ->
        let system =
          match system with
          | Some s -> s
          | None ->
              Rtlb.System.shared_uniform
                ~resources:(Rtlb.App.resource_set app)
        in
        let line_of =
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun (ts : Rtlb.Validate.task_spec) ->
              match ts.Rtlb.Validate.ts_line with
              | Some l -> Hashtbl.replace tbl ts.Rtlb.Validate.ts_name l
              | None -> ())
            spec.spec_tasks;
          fun name ->
            (* Periodic unrolling names jobs "t@k"; report the line of the
               declaring task. *)
            let base =
              match String.index_opt name '@' with
              | Some i -> String.sub name 0 i
              | None -> name
            in
            Hashtbl.find_opt tbl base
        in
        let all = diags @ Rtlb.Validate.check_windows ~line_of ~system app in
        (* Interleave the two phases by source line (stable; unlocated
           diagnostics sink to the end). *)
        List.stable_sort
          (fun (a : Rtlb.Validate.diag) (b : Rtlb.Validate.diag) ->
            match (a.Rtlb.Validate.d_line, b.Rtlb.Validate.d_line) with
            | Some x, Some y -> compare x y
            | Some _, None -> -1
            | None, Some _ -> 1
            | None, None -> 0)
          all
    | exception Parse_error (l, m) -> diags @ [ e100 l m ]
    | exception e -> diags @ [ e100 0 (Printexc.to_string e) ]

let to_string ?system app =
  let buf = Buffer.create 512 in
  Array.iter
    (fun (task : Rtlb.Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %s compute=%d release=%d deadline=%d proc=%s"
           task.Rtlb.Task.name task.Rtlb.Task.compute task.Rtlb.Task.release
           task.Rtlb.Task.deadline task.Rtlb.Task.proc);
      (match task.Rtlb.Task.demands with
      | [] -> ()
      | ds ->
          Buffer.add_string buf
            (" res="
            ^ String.concat ","
                (List.map
                   (fun (r, k) ->
                     if k = 1 then r else Printf.sprintf "%dx%s" k r)
                   ds)));
      if task.Rtlb.Task.preemptive then Buffer.add_string buf " preemptive";
      Buffer.add_char buf '\n')
    (Rtlb.App.tasks app);
  let name i = (Rtlb.App.task app i).Rtlb.Task.name in
  Dag.fold_edges (Rtlb.App.graph app) ~init:() ~f:(fun () ~src ~dst m ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s %d\n" (name src) (name dst) m));
  (match system with
  | None -> ()
  | Some (Rtlb.System.Shared costs) ->
      Buffer.add_string buf "shared";
      List.iter
        (fun (r, c) -> Buffer.add_string buf (Printf.sprintf " %s=%d" r c))
        costs;
      Buffer.add_char buf '\n'
  | Some (Rtlb.System.Dedicated nts) ->
      List.iter
        (fun (nt : Rtlb.System.node_type) ->
          Buffer.add_string buf
            (Printf.sprintf "node %s proc=%s" nt.Rtlb.System.nt_name
               nt.Rtlb.System.nt_proc);
          (match nt.Rtlb.System.nt_provides with
          | [] -> ()
          | provides ->
              Buffer.add_string buf " res=";
              Buffer.add_string buf
                (String.concat ","
                   (List.map
                      (fun (r, c) ->
                        if c = 1 then r else Printf.sprintf "%dx%s" c r)
                      provides)));
          Buffer.add_string buf
            (Printf.sprintf " cost=%d\n" nt.Rtlb.System.nt_cost))
        nts);
  Buffer.contents buf
