let us_of_ns ns = Int64.to_int (Int64.div ns 1_000L)

let spans_table (s : Rtlb_obs.Stats.t) =
  let t = Table.create [ "span"; "count"; "total us" ] in
  List.iter
    (fun (l : Rtlb_obs.Stats.span_line) ->
      Table.add_row t
        [
          l.Rtlb_obs.Stats.sl_name;
          string_of_int l.Rtlb_obs.Stats.sl_count;
          string_of_int (us_of_ns l.Rtlb_obs.Stats.sl_total_ns);
        ])
    s.Rtlb_obs.Stats.spans;
  t

let counters_table (s : Rtlb_obs.Stats.t) =
  let t = Table.create [ "counter"; "value" ] in
  List.iter
    (fun (name, v) -> Table.add_row t [ name; string_of_int v ])
    s.Rtlb_obs.Stats.counters;
  t

let workers_table (s : Rtlb_obs.Stats.t) =
  let t = Table.create [ "worker"; "chunks"; "items" ] in
  List.iter
    (fun (tid, chunks, items) ->
      Table.add_row t
        [
          Printf.sprintf "domain %d" tid;
          string_of_int chunks;
          string_of_int items;
        ])
    s.Rtlb_obs.Stats.workers;
  t

let render (s : Rtlb_obs.Stats.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "-- spans --\n";
  Buffer.add_string buf (Table.render (spans_table s));
  Buffer.add_string buf "\n-- counters --\n";
  Buffer.add_string buf (Table.render (counters_table s));
  if s.Rtlb_obs.Stats.workers <> [] then begin
    Buffer.add_string buf "\n-- workers --\n";
    Buffer.add_string buf (Table.render (workers_table s))
  end;
  Buffer.contents buf
