(** Minimal JSON values, printer, parser, and encoders for analysis
    results — so other tooling can consume the CLI's output without
    scraping tables.

    Only what the CLI needs: UTF-8 pass-through strings with standard
    escapes, integer numbers (all quantities in this repository are
    integers or rationals printed as strings). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation. *)

exception Parse_error of string

val parse : string -> t
(** Strict parser for the subset {!to_string} emits (numbers must be
    integers).  @raise Parse_error on malformed input. *)

val member : string -> t -> t
(** Object field access.  @raise Not_found when absent or not an object. *)

val of_stats : Rtlb_obs.Stats.t -> t
(** Observability summary: span totals, counter glossary values and
    per-worker chunk accounting, as nested objects. *)

val of_analysis : ?stats:Rtlb_obs.Stats.t -> Rtlb.Analysis.t -> t
(** Structured rendering of a full four-step analysis: task windows,
    per-resource bounds with witnesses and partitions, and the cost
    outcome.  With [?stats] (a traced run's summary), a trailing
    ["stats"] object is appended — omitted otherwise, so untraced
    output is byte-identical to earlier versions. *)

val of_schedule : Rtlb.App.t -> Sched.Schedule.t -> t

val of_whatif : base:Rtlb.Analysis.t -> edited:Rtlb.Analysis.t -> t
(** What-if reply: per-resource [base_lb]/[lb]/[delta] rows, a
    top-level [partial] flag, and the full edited analysis under
    ["edited"] — shared by [rtlb whatif --json] and the serve daemon so
    both surfaces emit byte-identical results. *)
