(** Plain-text rendering of an {!Rtlb_obs.Stats} summary (the CLI's
    `--stats` table and the benchmark per-phase breakdowns). *)

val spans_table : Rtlb_obs.Stats.t -> Table.t
(** One row per span name: count, total microseconds. *)

val counters_table : Rtlb_obs.Stats.t -> Table.t
(** One row per glossary counter. *)

val workers_table : Rtlb_obs.Stats.t -> Table.t
(** One row per worker domain: chunks claimed, work items executed. *)

val render : Rtlb_obs.Stats.t -> string
(** The full `--stats` block: spans, counters and (when any chunk ran)
    the per-worker table, each under a small heading.  Deterministic for
    a fake-clock run. *)
