(* Per-instance circuit breakers for the serve daemon.

   One breaker per instance fingerprint (the engine+app digest the
   cache and coalescer already key on).  An instance whose analysis
   keeps failing (S302 invalid_app, S305 internal) trips its breaker:

     closed --[threshold consecutive failures]--> open
     open   --[cooldown elapsed]---------------> half-open (one probe)
     half-open --[probe succeeds]--------------> closed
     half-open --[probe fails]-----------------> open (fresh cooldown)

   While open, admission fast-fails the request with S308 circuit_open
   and a retry_after_ms hint — the queue and the workers never see it,
   so a hot broken instance cannot monopolize retries.  Exactly one
   request is let through per half-open window; concurrent requests
   racing the probe keep fast-failing until the probe settles.

   Time is injectable ([?now], nanoseconds, monotonic) so the
   open/half-open schedule is testable against a fake clock, same as
   Quota.  The table is bounded like the server's warmth table: a
   pathological stream of distinct broken fingerprints resets it
   rather than growing without bound (losing breaker state merely
   costs [threshold] more failures before re-opening). *)

module Tracer = Rtlb_obs.Tracer

type state =
  | Closed of int  (* consecutive failures so far *)
  | Open of int64  (* fast-fail until (ns, injectable clock base) *)
  | Half_open  (* one probe in flight; everyone else fast-fails *)

type t = {
  threshold : int;
  cooldown_ns : int64;
  now : unit -> int64;
  tracer : Tracer.t;
  mutex : Mutex.t;
  table : (string, state) Hashtbl.t;
}

let max_table = 4096

let create ?now ?(tracer = Tracer.null) ~threshold ~cooldown_ms () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown_ms < 1 then
    invalid_arg "Breaker.create: cooldown_ms must be >= 1";
  let now =
    match now with
    | Some f -> f
    | None -> fun () -> Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic
  in
  {
    threshold;
    cooldown_ns = Int64.mul (Int64.of_int cooldown_ms) 1_000_000L;
    now;
    tracer;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
  }

type verdict = Proceed | Probe | Fast_fail of { retry_after_ms : int }

let state t key =
  Option.value ~default:(Closed 0) (Hashtbl.find_opt t.table key)

(* Retry hint: the remaining cooldown, rounded up, clamped to
   [1, 60_000] ms — same bounds discipline as Quota's hint. *)
let retry_ms remaining_ns =
  let ms = Int64.to_int (Int64.div (Int64.add remaining_ns 999_999L) 1_000_000L) in
  if ms < 1 then 1 else if ms > 60_000 then 60_000 else ms

let check t key =
  Mutex.lock t.mutex;
  let verdict =
    match state t key with
    | Closed _ -> Proceed
    | Half_open ->
        Fast_fail
          { retry_after_ms = retry_ms (Int64.div t.cooldown_ns 2L) }
    | Open until ->
        let remaining = Int64.sub until (t.now ()) in
        if Int64.compare remaining 0L > 0 then
          Fast_fail { retry_after_ms = retry_ms remaining }
        else begin
          (* cooldown over: this caller becomes the single probe *)
          Hashtbl.replace t.table key Half_open;
          Tracer.add t.tracer Tracer.Breaker_probes 1;
          Probe
        end
  in
  Mutex.unlock t.mutex;
  verdict

let success t key =
  Mutex.lock t.mutex;
  (match state t key with
  | Closed 0 -> ()  (* never tripped: keep the table sparse *)
  | Closed _ | Half_open | Open _ -> Hashtbl.replace t.table key (Closed 0));
  Mutex.unlock t.mutex

let trip t key =
  Hashtbl.replace t.table key (Open (Int64.add (t.now ()) t.cooldown_ns));
  Tracer.add t.tracer Tracer.Breaker_opens 1

let failure t key =
  Mutex.lock t.mutex;
  if Hashtbl.length t.table > max_table then Hashtbl.reset t.table;
  (match state t key with
  | Closed n when n + 1 >= t.threshold -> trip t key
  | Closed n -> Hashtbl.replace t.table key (Closed (n + 1))
  | Half_open -> trip t key  (* the probe itself failed: back to open *)
  | Open _ -> ()  (* a request admitted before the trip; already open *));
  Mutex.unlock t.mutex

let open_count t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ st acc ->
        match st with Open _ | Half_open -> acc + 1 | Closed _ -> acc)
      t.table 0
  in
  Mutex.unlock t.mutex;
  n
