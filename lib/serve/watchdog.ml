(* Process-level supervision for the daemon: the Supervisor's
   retry/heal philosophy lifted one level, from worker domains to the
   serving process itself.

   The watchdog — a deliberately tiny parent process — binds the
   listening sockets ITSELF and passes the inherited fds to each forked
   child.  That ordering is the whole trick: a child crash never closes
   the listening socket, so clients see a connection reset (which
   Client.Failover absorbs), never a vanished endpoint or an
   address-in-use race while the replacement binds.

   Restart policy mirrors Supervisor.backoff_ms: jittered exponential
   backoff between restarts, and a sliding crash window so a child that
   dies on arrival (crash loop — bad flags, corrupt state, a chaos plan
   with an unconditional kill) is detected and reported with a non-zero
   exit instead of flapping forever.  A child that exits 0 (graceful
   drain) ends supervision: exit-0 semantics are identical with and
   without --supervised. *)

type config = {
  max_crashes : int;  (* crash-loop threshold within the window *)
  crash_window_s : float;
  backoff_initial_ms : int;
  backoff_max_ms : int;
  health_file : string option;
  log : string -> unit;
}

let default_config =
  {
    max_crashes = 5;
    crash_window_s = 30.0;
    backoff_initial_ms = 100;
    backoff_max_ms = 5_000;
    health_file = None;
    log = (fun line -> Printf.eprintf "rtlb-watchdog: %s\n%!" line);
  }

let crash_loop_exit = 3

(* Deterministic jitter in [0.5, 1.0) of the exponential backoff —
   same golden-ratio hash as the client's connect backoff. *)
let backoff_s cfg restart =
  let base =
    Float.min
      (float_of_int cfg.backoff_initial_ms *. float_of_int (1 lsl min restart 8))
      (float_of_int cfg.backoff_max_ms)
    /. 1000.0
  in
  let jitter =
    float_of_int (((restart + 1) * 0x9E3779B1) land 0xffff) /. 65536.0
  in
  base *. (0.5 +. (0.5 *. jitter))

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* OCaml signal numbers are negative internals; map the ones we forward
   to the conventional 128+N shell exit codes. *)
let signal_exit_code s =
  if s = Sys.sigterm then 143
  else if s = Sys.sigint then 130
  else if s = Sys.sigkill then 137
  else 128 + 15

let run ?(config = default_config) ~endpoints ~child () =
  let sockets = Server.bind_endpoints endpoints in
  let child_pid = ref 0 in
  let terminating = ref false in
  let forward signal _ =
    terminating := true;
    if !child_pid > 0 then
      try Unix.kill !child_pid signal with Unix.Unix_error _ -> ()
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (forward Sys.sigint)) in
  let cleanup () =
    (try Sys.set_signal Sys.sigterm prev_term with Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint prev_int with Sys_error _ -> ());
    List.iter
      (fun (fd, path) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match path with
        | Some p -> ( try Sys.remove p with Sys_error _ -> ())
        | None -> ())
      sockets
  in
  (* interruptible backoff: SIGTERM mid-backoff must not be slept away *)
  let sleep_interruptible seconds =
    let deadline = Unix.gettimeofday () +. seconds in
    let rec nap () =
      if (not !terminating) && Unix.gettimeofday () < deadline then begin
        (try ignore (Unix.select [] [] [] 0.05)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        nap ()
      end
    in
    nap ()
  in
  let rec wait pid =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait pid
  in
  let spawn generation =
    (* flush before fork so buffered diagnostics are not emitted twice *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (* the CLI child installs its own drain discipline; until then,
           default dispositions — not the watchdog's forwarders *)
        Sys.set_signal Sys.sigterm Sys.Signal_default;
        Sys.set_signal Sys.sigint Sys.Signal_default;
        (try child ~generation sockets
         with e ->
           Printf.eprintf "rtlb-serve[%d]: %s\n%!" generation
             (Printexc.to_string e));
        flush stdout;
        flush stderr;
        Unix._exit 0
    | pid -> pid
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let crash_times = ref [] in
  let rec supervise generation =
    let pid = spawn generation in
    child_pid := pid;
    config.log (Printf.sprintf "generation %d: child pid %d" generation pid);
    let status = wait pid in
    child_pid := 0;
    match status with
    | Unix.WEXITED 0 ->
        config.log (Printf.sprintf "generation %d: graceful exit" generation);
        0
    | Unix.WEXITED code when !terminating ->
        config.log
          (Printf.sprintf "generation %d: exited %d while terminating"
             generation code);
        code
    | Unix.WSIGNALED s when !terminating -> signal_exit_code s
    | status ->
        let now = Unix.gettimeofday () in
        crash_times :=
          now
          :: List.filter
               (fun t -> now -. t <= config.crash_window_s)
               !crash_times;
        Option.iter
          (fun path -> Health.write ~path Health.Degraded)
          config.health_file;
        if List.length !crash_times >= config.max_crashes then begin
          config.log
            (Printf.sprintf
               "crash loop: %d crashes within %.0fs (last: %s) — giving up"
               (List.length !crash_times)
               config.crash_window_s (status_string status));
          crash_loop_exit
        end
        else begin
          let pause = backoff_s config generation in
          config.log
            (Printf.sprintf "generation %d: %s; restarting in %.2fs"
               generation (status_string status) pause);
          sleep_interruptible pause;
          if !terminating then 143 else supervise (generation + 1)
        end
  in
  supervise 0
