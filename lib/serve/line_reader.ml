(* Incremental line reader over a raw fd, so accept/stdio loops can
   poll a stop flag between reads without losing buffered bytes (mixing
   select(2) with OCaml's buffered channels would).

   The frame-size cap is enforced on the *buffered* bytes, not only on
   extracted lines: a client streaming an endless frame with no '\n'
   used to grow the buffer without bound until the heap gave out.  Now,
   as soon as the pending (newline-free) bytes exceed [max_bytes], the
   reader reports [Overflow] and stops consuming — the caller replies
   S300 and drops the connection.  Buffered memory is bounded by
   [max_bytes] plus one read chunk. *)

let chunk_bytes = 65536

type t = {
  fd : Unix.file_descr;
  max_bytes : int;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable eof : bool;
  mutable overflowed : bool;
}

type event = Line of string | Eof | Overflow

let create ?max_bytes fd =
  let max_bytes =
    match max_bytes with
    | Some n when n > 0 -> n
    | Some _ -> invalid_arg "Line_reader.create: max_bytes must be positive"
    | None -> 8 * 1024 * 1024
  in
  {
    fd;
    max_bytes;
    buf = Buffer.create 4096;
    chunk = Bytes.create chunk_bytes;
    eof = false;
    overflowed = false;
  }

let buffered t = Buffer.length t.buf

let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None ->
      if t.eof && s <> "" then (
        Buffer.clear t.buf;
        Some s)
      else None

let rec read t ~stop =
  if t.overflowed then Overflow
  else
    match take_line t with
    | Some line -> Line line
    | None ->
        (* No complete line buffered: everything pending belongs to one
           unterminated frame.  Past the cap it can only be rejected, so
           stop accumulating now. *)
        if Buffer.length t.buf > t.max_bytes then begin
          t.overflowed <- true;
          Buffer.clear t.buf;
          Overflow
        end
        else if t.eof || stop () then Eof
        else begin
          (match Unix.select [ t.fd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
              | 0 -> t.eof <- true
              | n -> Buffer.add_subbytes t.buf t.chunk 0 n
              | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
                  ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          read t ~stop
        end
