(* Per-tenant token-bucket quotas for the serve daemon.

   One bucket per tenant key (the optional "tenant" request field;
   anonymous requests share the "" bucket).  Buckets are lazily
   created full and refill continuously at [rate_per_s], capped at
   [burst]; each admitted frame spends one token.  An empty bucket
   rejects with a retry hint: the time until one whole token has
   dripped back, clamped to [1, max_retry_ms] so the hint can never be
   zero, negative, or absurd (the same clamp discipline as the
   admission queue's S303 hint).

   Time is injectable ([?now], nanoseconds, monotonic) so the
   exhaustion/refill schedule is testable against a fake clock. *)

type bucket = { mutable tokens : float; mutable last_ns : int64 }

type t = {
  rate_per_s : float;
  burst : float;
  now : unit -> int64;
  mutex : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
}

type verdict = Admit | Reject of { retry_after_ms : int }

let max_retry_ms = 60_000

let create ?now ~rate_per_s ~burst () =
  if not (Float.is_finite rate_per_s && rate_per_s > 0.0) then
    invalid_arg "Quota.create: rate_per_s must be a positive finite number";
  if not (Float.is_finite burst && burst >= 1.0) then
    invalid_arg "Quota.create: burst must be at least 1";
  let now =
    match now with
    | Some f -> f
    | None -> fun () -> Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic
  in
  {
    rate_per_s;
    burst;
    now;
    mutex = Mutex.create ();
    buckets = Hashtbl.create 16;
  }

let rate_per_s t = t.rate_per_s
let burst t = t.burst

let clamp_retry_ms ms =
  if ms < 1 then 1 else if ms > max_retry_ms then max_retry_ms else ms

let refill t bucket now_ns =
  let dt_ns = Int64.sub now_ns bucket.last_ns in
  (* A fake clock can hand the same (or, across threads, an earlier)
     timestamp to two observations; never drain tokens on a negative
     interval. *)
  if Int64.compare dt_ns 0L > 0 then begin
    let dt_s = Int64.to_float dt_ns /. 1e9 in
    bucket.tokens <- Float.min t.burst (bucket.tokens +. (dt_s *. t.rate_per_s))
  end;
  bucket.last_ns <- Int64.max bucket.last_ns now_ns

let take t tenant =
  Mutex.lock t.mutex;
  let bucket =
    match Hashtbl.find_opt t.buckets tenant with
    | Some b -> b
    | None ->
        let b = { tokens = t.burst; last_ns = t.now () } in
        Hashtbl.add t.buckets tenant b;
        b
  in
  refill t bucket (t.now ());
  let verdict =
    if bucket.tokens >= 1.0 then begin
      bucket.tokens <- bucket.tokens -. 1.0;
      Admit
    end
    else
      let deficit = 1.0 -. bucket.tokens in
      let wait_ms = Float.ceil (deficit /. t.rate_per_s *. 1e3) in
      Reject { retry_after_ms = clamp_retry_ms (int_of_float wait_ms) }
  in
  Mutex.unlock t.mutex;
  verdict

let tenants t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.buckets in
  Mutex.unlock t.mutex;
  n
