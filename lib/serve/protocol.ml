(* JSON-lines request/reply protocol for the bound-query daemon.

   One request per line, one reply per line; replies carry the
   request's "id" verbatim so clients may pipeline out of order.  Every
   failure is a structured error object with a stable S3xx code —
   the service-level counterpart of the E100–E106 validation codes
   (docs/ROBUSTNESS.md documents the full table). *)

module Json = Rtfmt.Json

type op = Analyze | Whatif | Sensitivity | Check | Ping | Stats | Health

let op_name = function
  | Analyze -> "analyze"
  | Whatif -> "whatif"
  | Sensitivity -> "sensitivity"
  | Check -> "check"
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"

let op_of_name = function
  | "analyze" -> Some Analyze
  | "whatif" -> Some Whatif
  | "sensitivity" -> Some Sensitivity
  | "check" -> Some Check
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "health" -> Some Health
  | _ -> None

type code =
  | Bad_frame
  | Bad_request
  | Invalid_app
  | Overloaded
  | Deadline_expired
  | Internal
  | Draining
  | Quota_exceeded
  | Circuit_open

let code_id = function
  | Bad_frame -> "S300"
  | Bad_request -> "S301"
  | Invalid_app -> "S302"
  | Overloaded -> "S303"
  | Deadline_expired -> "S304"
  | Internal -> "S305"
  | Draining -> "S306"
  | Quota_exceeded -> "S307"
  | Circuit_open -> "S308"

let code_name = function
  | Bad_frame -> "bad_frame"
  | Bad_request -> "bad_request"
  | Invalid_app -> "invalid_app"
  | Overloaded -> "overloaded"
  | Deadline_expired -> "deadline_expired"
  | Internal -> "internal"
  | Draining -> "draining"
  | Quota_exceeded -> "quota_exceeded"
  | Circuit_open -> "circuit_open"

let all_codes =
  [
    Bad_frame; Bad_request; Invalid_app; Overloaded; Deadline_expired;
    Internal; Draining; Quota_exceeded; Circuit_open;
  ]

let code_of_id id = List.find_opt (fun c -> code_id c = id) all_codes

exception Reject of code * string

type priority = High | Low

let priority_name = function High -> "high" | Low -> "low"

type request = {
  id : Json.t;  (** Echoed verbatim in the reply; [Null] when absent. *)
  op : op;
  app : string;  (** Application file text (the {!Rtfmt.Appfile} format). *)
  engine : [ `Record | `Soa ];
  deadline_ms : int option;
  tenant : string option;  (** Quota key; anonymous when absent. *)
  priority : priority option;  (** [None]: the server decides. *)
  edits : Rtlb.Incremental.edit list;  (** [whatif] only. *)
  factors : float list;  (** [sensitivity] only. *)
}

(* ---- request parsing -------------------------------------------- *)

let fail fmt = Printf.ksprintf (fun m -> raise (Reject (Bad_request, m))) fmt

let parse_edit j =
  match j with
  | Json.Obj fields ->
      let task =
        match List.assoc_opt "task" fields with
        | Some (Json.Int t) when t >= 0 -> t
        | Some _ -> fail "edit field \"task\" must be a non-negative integer"
        | None -> fail "edit is missing required field \"task\""
      in
      let value name =
        match List.assoc_opt name fields with
        | Some (Json.Int v) -> Some v
        | Some _ -> fail "edit field %S must be an integer" name
        | None -> None
      in
      List.iter
        (fun (k, _) ->
          match k with
          | "task" | "release" | "deadline" | "compute" -> ()
          | other -> fail "unknown edit field %S" other)
        fields;
      let edits =
        List.filter_map Fun.id
          [
            Option.map
              (fun release -> Rtlb.Incremental.Set_release { task; release })
              (value "release");
            Option.map
              (fun deadline -> Rtlb.Incremental.Set_deadline { task; deadline })
              (value "deadline");
            Option.map
              (fun compute -> Rtlb.Incremental.Set_compute { task; compute })
              (value "compute");
          ]
      in
      if edits = [] then
        fail "edit for task %d needs one of \"release\", \"deadline\", \"compute\""
          task;
      edits
  | _ -> fail "\"edits\" elements must be objects"

let parse_factor j =
  let of_string s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f > 0.0 -> f
    | _ -> fail "factor %S is not a positive finite number" s
  in
  match j with
  | Json.Str s -> of_string s
  | Json.Int i when i > 0 -> float_of_int i
  | Json.Int i -> fail "factor %d is not positive" i
  | _ -> fail "\"factors\" elements must be numbers or numeric strings"

let request_of_json j =
  try
    let fields =
      match j with
      | Json.Obj fields -> fields
      | _ -> fail "request frame must be a JSON object"
    in
    List.iter
      (fun (k, _) ->
        match k with
        | "id" | "op" | "app" | "engine" | "deadline_ms" | "tenant"
        | "priority" | "edits" | "factors" ->
            ()
        | other -> fail "unknown request field %S" other)
      fields;
    let id = Option.value ~default:Json.Null (List.assoc_opt "id" fields) in
    let op =
      match List.assoc_opt "op" fields with
      | Some (Json.Str name) -> (
          match op_of_name name with
          | Some op -> op
          | None -> fail "unknown op %S" name)
      | Some _ -> fail "\"op\" must be a string"
      | None -> fail "request is missing required field \"op\""
    in
    let app =
      match (op, List.assoc_opt "app" fields) with
      | (Ping | Stats | Health), None -> ""
      | (Ping | Stats | Health), Some _ ->
          fail "op %S takes no \"app\"" (op_name op)
      | _, Some (Json.Str text) -> text
      | _, Some _ -> fail "\"app\" must be a string (application file text)"
      | _, None -> fail "op %S requires field \"app\"" (op_name op)
    in
    let engine =
      match List.assoc_opt "engine" fields with
      | Some (Json.Str "record") | None -> `Record
      | Some (Json.Str "soa") -> `Soa
      | Some (Json.Str other) ->
          fail "unknown engine %S (expected \"record\" or \"soa\")" other
      | Some _ -> fail "\"engine\" must be a string"
    in
    let deadline_ms =
      match List.assoc_opt "deadline_ms" fields with
      | Some (Json.Int ms) when ms >= 0 -> Some ms
      | Some _ -> fail "\"deadline_ms\" must be a non-negative integer"
      | None -> None
    in
    let tenant =
      match List.assoc_opt "tenant" fields with
      | Some (Json.Str "") -> fail "\"tenant\" must not be empty"
      | Some (Json.Str name) -> Some name
      | Some _ -> fail "\"tenant\" must be a string"
      | None -> None
    in
    let priority =
      match List.assoc_opt "priority" fields with
      | Some (Json.Str "high") -> Some High
      | Some (Json.Str "low") -> Some Low
      | Some (Json.Str other) ->
          fail "unknown priority %S (expected \"high\" or \"low\")" other
      | Some _ -> fail "\"priority\" must be a string"
      | None -> None
    in
    let edits =
      match (op, List.assoc_opt "edits" fields) with
      | Whatif, Some (Json.List l) when l <> [] ->
          List.concat_map parse_edit l
      | Whatif, Some (Json.List []) -> fail "\"edits\" must not be empty"
      | Whatif, Some _ -> fail "\"edits\" must be a list of edit objects"
      | Whatif, None -> fail "op \"whatif\" requires field \"edits\""
      | _, Some _ -> fail "op %S takes no \"edits\"" (op_name op)
      | _, None -> []
    in
    let factors =
      match (op, List.assoc_opt "factors" fields) with
      | Sensitivity, Some (Json.List l) when l <> [] ->
          List.map parse_factor l
      | Sensitivity, Some (Json.List []) -> fail "\"factors\" must not be empty"
      | Sensitivity, Some _ -> fail "\"factors\" must be a list"
      | Sensitivity, None -> fail "op \"sensitivity\" requires field \"factors\""
      | _, Some _ -> fail "op %S takes no \"factors\"" (op_name op)
      | _, None -> []
    in
    Ok { id; op; app; engine; deadline_ms; tenant; priority; edits; factors }
  with Reject (_, msg) -> Error msg

(* ---- replies ----------------------------------------------------- *)

let error_reply ~id code ?retry_after_ms msg =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          ([
             ("code", Json.Str (code_id code));
             ("name", Json.Str (code_name code));
             ("message", Json.Str msg);
           ]
          @
          match retry_after_ms with
          | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
          | None -> []) );
    ]

let ok_reply ~id ~op ?(degraded = false) result =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool true); ("op", Json.Str (op_name op)) ]
    @ (if degraded then [ ("degraded", Json.Bool true) ] else [])
    @ [ ("result", result) ])

let json_of_sample (s : Rtlb.Sensitivity.sample) =
  Json.Obj
    [
      ("factor", Json.Str (Printf.sprintf "%.12g" s.Rtlb.Sensitivity.s_factor));
      ("feasible", Json.Bool s.Rtlb.Sensitivity.s_feasible);
      ( "bounds",
        Json.List
          (List.map
             (fun (r, lb) ->
               Json.Obj [ ("resource", Json.Str r); ("lb", Json.Int lb) ])
             s.Rtlb.Sensitivity.s_bounds) );
      ( "shared_cost",
        match s.Rtlb.Sensitivity.s_shared_cost with
        | Some c -> Json.Int c
        | None -> Json.Null );
      ("partial", Json.Bool s.Rtlb.Sensitivity.s_partial);
    ]

let json_of_diag (d : Rtlb.Validate.diag) =
  Json.Obj
    [
      ("code", Json.Str d.Rtlb.Validate.d_code);
      ( "severity",
        Json.Str
          (match d.Rtlb.Validate.d_severity with
          | Rtlb.Validate.Error -> "error"
          | Rtlb.Validate.Warning -> "warning") );
      ("subject", Json.Str d.Rtlb.Validate.d_subject);
      ("message", Json.Str d.Rtlb.Validate.d_message);
      ( "line",
        match d.Rtlb.Validate.d_line with
        | Some l -> Json.Int l
        | None -> Json.Null );
    ]

let to_line j = Json.to_string ~indent:false j
