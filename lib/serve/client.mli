(** Minimal JSON-lines client for the bound-query daemon ({!Server}).

    Single-threaded per connection: one {!call} writes a frame (looping
    on short writes) and blocks until the reply whose echoed ["id"]
    matches arrives; {!pipeline} writes a whole burst first so the
    daemon can classify and coalesce it, then collects the replies,
    tolerating out-of-order arrival (priority admission may answer a
    later request first).  Used by the multi-process bench load
    generator (bench e15) and the serve tests. *)

type t

val connect_unix : ?retry_for:float -> string -> t
(** Connect to a Unix-domain socket.  [retry_for] (seconds, default 0)
    keeps retrying [ECONNREFUSED]/[ENOENT] with jittered exponential
    backoff (5 ms doubling to a 200 ms cap, jitter spreading a fleet of
    racing clients) — for clients racing the daemon's startup.
    @raise Failure naming the attempt count when the retry budget is
    exhausted.
    @raise Unix.Unix_error when the first (and only, [retry_for = 0])
    attempt fails. *)

val connect_tcp : ?retry_for:float -> host:string -> port:int -> unit -> t
(** @raise Invalid_argument on an unresolvable host. *)

val connect_sockaddr : ?retry_for:float -> Unix.sockaddr -> t
(** Connect to an address as reported by {!Server.serve}'s [on_ready]
    (ephemeral TCP ports resolved). *)

val close : t -> unit

val call : t -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
(** Send one request object and wait for its reply.  A missing ["id"]
    field is filled in with a fresh integer.  [Error] means transport
    failure (connection closed, oversized or unparseable reply) —
    daemon-level failures are [Ok] replies with ["ok": false]. *)

val pipeline : t -> Rtfmt.Json.t list -> (Rtfmt.Json.t, string) result list
(** Send every frame before reading any reply; result order matches
    request order even when replies arrive out of order. *)

val send : t -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
(** Write one frame without waiting; [Ok id] is the handle for
    {!recv}.  The building block for hand-rolled pipelining (the bench
    load generator times each reply individually). *)

val send_batch : t -> Rtfmt.Json.t list -> (Rtfmt.Json.t, string) result list
(** Like many {!send}s but rendered into a single write, so the whole
    burst reaches the daemon's admission queue in one read — what
    gives its coalescer and priority classifier a full batch to work
    with.  Returns one id (or error) per frame, in order. *)

val recv : t -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
(** Wait for the reply whose ["id"] equals the given one; replies for
    other outstanding ids arriving first are stashed (unparsed) for
    their own {!recv}. *)

val recv_raw : t -> Rtfmt.Json.t -> (string, string) result
(** {!recv} without the JSON parse: the raw single-line reply.  Routing
    relies on the daemon echoing the id as the first field of a
    compactly rendered reply, so matching is a string-prefix check —
    the zero-copy path for throughput-sensitive consumers. *)

val ping : t -> bool
(** [true] iff the daemon answers the [ping] op with ["ok": true]. *)

(** A decoded daemon error reply.  [se_code] is [None] when the code is
    one this client build does not know (a newer daemon's addition) —
    the raw [se_code_id] (e.g. ["S399"]) is still carried, so callers
    degrade gracefully instead of raising on protocol growth. *)
type server_error = {
  se_code : Protocol.code option;
  se_code_id : string;
  se_message : string;
  se_retry_after_ms : int option;
}

val decode_error : Rtfmt.Json.t -> server_error option
(** [Some] iff the reply is a daemon error (["ok": false]).  Total:
    never raises, whatever the reply's shape. *)

(** A client that survives the daemon: give it every endpoint the
    (supervised) daemon listens on, and a transport failure — EOF,
    [ECONNRESET], [EPIPE], a watchdog-restarted child — rotates to the
    next endpoint, reconnects with backoff and resends {e only} the
    requests whose replies were never received (matched by request id).
    Replies that did arrive before the crash are carried across the
    reconnect and delivered exactly once; since the daemon's analyses
    are deterministic, a resent request's reply is byte-identical to
    the crash-free run's. *)
module Failover : sig
  type conn

  val connect :
    ?tracer:Rtlb_obs.Tracer.t ->
    ?retry_for:float ->
    ?max_failovers:int ->
    Unix.sockaddr list ->
    conn
  (** [retry_for] (default 5 s) bounds each reconnect attempt;
      [max_failovers] (default 16) bounds reconnects per logical
      receive before giving up with [Error].  [tracer] counts each
      successful reconnect as [failovers].
      @raise Invalid_argument on an empty endpoint list. *)

  val call : conn -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
  (** {!Client.call} through crashes: blocks until the reply arrives on
      whatever connection ends up delivering it. *)

  val send : conn -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
  (** Queue + write one frame; a torn write is {e not} an error (the
      frame is pending and will be resent on reconnect).  [Ok id] is
      the handle for {!recv}. *)

  val recv : conn -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result

  val pipeline : conn -> Rtfmt.Json.t list -> (Rtfmt.Json.t, string) result list

  val close : conn -> unit
end
