(** Minimal JSON-lines client for the bound-query daemon ({!Server}).

    Single-threaded per connection: one {!call} writes a frame (looping
    on short writes) and blocks until the reply whose echoed ["id"]
    matches arrives; {!pipeline} writes a whole burst first so the
    daemon can classify and coalesce it, then collects the replies,
    tolerating out-of-order arrival (priority admission may answer a
    later request first).  Used by the multi-process bench load
    generator (bench e15) and the serve tests. *)

type t

val connect_unix : ?retry_for:float -> string -> t
(** Connect to a Unix-domain socket.  [retry_for] (seconds, default 0)
    keeps retrying [ECONNREFUSED]/[ENOENT] — for clients racing the
    daemon's startup.
    @raise Unix.Unix_error when the connection (still) fails. *)

val connect_tcp : ?retry_for:float -> host:string -> port:int -> unit -> t
(** @raise Invalid_argument on an unresolvable host. *)

val connect_sockaddr : ?retry_for:float -> Unix.sockaddr -> t
(** Connect to an address as reported by {!Server.serve}'s [on_ready]
    (ephemeral TCP ports resolved). *)

val close : t -> unit

val call : t -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
(** Send one request object and wait for its reply.  A missing ["id"]
    field is filled in with a fresh integer.  [Error] means transport
    failure (connection closed, oversized or unparseable reply) —
    daemon-level failures are [Ok] replies with ["ok": false]. *)

val pipeline : t -> Rtfmt.Json.t list -> (Rtfmt.Json.t, string) result list
(** Send every frame before reading any reply; result order matches
    request order even when replies arrive out of order. *)

val send : t -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
(** Write one frame without waiting; [Ok id] is the handle for
    {!recv}.  The building block for hand-rolled pipelining (the bench
    load generator times each reply individually). *)

val send_batch : t -> Rtfmt.Json.t list -> (Rtfmt.Json.t, string) result list
(** Like many {!send}s but rendered into a single write, so the whole
    burst reaches the daemon's admission queue in one read — what
    gives its coalescer and priority classifier a full batch to work
    with.  Returns one id (or error) per frame, in order. *)

val recv : t -> Rtfmt.Json.t -> (Rtfmt.Json.t, string) result
(** Wait for the reply whose ["id"] equals the given one; replies for
    other outstanding ids arriving first are stashed (unparsed) for
    their own {!recv}. *)

val recv_raw : t -> Rtfmt.Json.t -> (string, string) result
(** {!recv} without the JSON parse: the raw single-line reply.  Routing
    relies on the daemon echoing the id as the first field of a
    compactly rendered reply, so matching is a string-prefix check —
    the zero-copy path for throughput-sensitive consumers. *)

val ping : t -> bool
(** [true] iff the daemon answers the [ping] op with ["ok": true]. *)
