(** Per-instance circuit breakers for {!Server}.

    One breaker per instance fingerprint (the same engine+app digest
    the warm cache and the coalescer key on).  [threshold] consecutive
    analysis failures (S302/S305) trip the fingerprint's breaker open;
    while open, admission fast-fails matching requests with
    [S308 circuit_open] and a [retry_after_ms] hint instead of queueing
    them.  After [cooldown_ms], exactly one request is let through as a
    half-open probe: its success closes the breaker, its failure
    re-opens it for a fresh cooldown.

    Transitions land on the tracer as [breaker_opens] /
    [breaker_probes].  Thread-safe; the clock is injectable for
    fake-time tests (the same idiom as {!Quota}). *)

type t

val create :
  ?now:(unit -> int64) ->
  ?tracer:Rtlb_obs.Tracer.t ->
  threshold:int ->
  cooldown_ms:int ->
  unit ->
  t
(** [now] is a monotonic nanosecond clock (default
    {!Rtlb_obs.Clock.monotonic}).
    @raise Invalid_argument when [threshold < 1] or [cooldown_ms < 1]. *)

type verdict =
  | Proceed  (** Breaker closed — admit normally. *)
  | Probe
      (** Cooldown elapsed; this request is the single half-open probe.
          Admit it, and report its outcome with {!success}/{!failure}. *)
  | Fast_fail of { retry_after_ms : int }
      (** Breaker open (or a probe already in flight): reject with
          [S308] without queueing.  [retry_after_ms] is clamped to
          [\[1, 60_000\]]. *)

val check : t -> string -> verdict
(** Admission-side consultation for one fingerprint. *)

val success : t -> string -> unit
(** The fingerprint produced a successful reply: close its breaker and
    forget its failure streak. *)

val failure : t -> string -> unit
(** The fingerprint failed analysis (S302/S305): extend its streak,
    trip the breaker at [threshold], re-open on a failed probe. *)

val open_count : t -> int
(** Fingerprints currently open or half-open — [> 0] degrades the
    daemon's [health] report. *)
