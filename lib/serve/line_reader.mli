(** Incremental, select-friendly line reader over a raw file
    descriptor, with the daemon's frame-size cap enforced on {e
    buffered} bytes.

    The serve front ends read request frames through this so they can
    poll a stop flag between chunks; {!Client} reads replies through it
    too.  A peer that streams more than [max_bytes] without a newline
    is reported as {!Overflow} after buffering at most
    [max_bytes + 64 KiB] — it can never balloon the daemon's heap
    (the regression that motivated this module: the cap used to be
    checked only after a complete line was extracted). *)

type t

type event =
  | Line of string  (** One frame, newline stripped. *)
  | Eof  (** Peer closed (or the stop flag turned true). *)
  | Overflow
      (** More than [max_bytes] buffered with no newline.  The reader
          is poisoned: every later {!read} returns [Overflow] and the
          buffer has been released — reply [S300] and drop the
          connection. *)

val create : ?max_bytes:int -> Unix.file_descr -> t
(** [max_bytes] defaults to the daemon's 8 MiB frame cap.
    @raise Invalid_argument when [max_bytes <= 0]. *)

val read : t -> stop:(unit -> bool) -> event
(** Blocks (polling [stop] at least every 200 ms) until a full line,
    EOF, or overflow. *)

val buffered : t -> int
(** Bytes currently buffered — bounded by [max_bytes] + one 64 KiB read
    chunk; the flood regression asserts this while streaming. *)
