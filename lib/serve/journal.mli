(** Warm-state journal for {!Server}: an append-only, checksummed,
    bounded log of the instances the daemon answered (engine + full
    application text), replayed on (re)start to pre-warm the handle
    cache in the background.

    Durability discipline (the same as {!Rtfmt.Checkpoint}): every
    record carries a checksum recomputed on load; a record that fails
    to parse or verify — or a torn final line from an append cut short
    by a crash — is dropped together with everything after it, and the
    clean prefix is rewritten atomically.  A corrupt tail is never
    trusted, so the journal can only lose warmth, never correctness.

    The file is log-structured: appends are single [O_APPEND] writes,
    duplicates only move in the in-memory recency order, and the file
    is compacted (rewritten through {!Rtfmt.Atomic_io} with just the
    live entries) once it exceeds twice the capacity.  Thread-safe. *)

type t

type entry = { je_engine : [ `Record | `Soa ]; je_app : string }

val open_ : ?tracer:Rtlb_obs.Tracer.t -> capacity:int -> string -> t
(** Open (or create) the journal at a path, validating any existing
    content line by line and repairing in place if anything had to be
    dropped or trimmed.
    @raise Invalid_argument when [capacity < 1].
    @raise Unix.Unix_error when the path cannot be created at all. *)

val record : t -> [ `Record | `Soa ] -> app:string -> unit
(** Note that an instance just produced a successful analyze/what-if
    reply.  Duplicate of the current head: no-op.  Known digest: moved
    to the front of the recency order.  New digest: appended (possibly
    evicting the oldest from the live set).  Write errors are swallowed
    — journaling never fails a request. *)

val entries : t -> entry list
(** Live entries, most recently used first — the replay order. *)

val length : t -> int

val dropped_tail : t -> int
(** Lines dropped as corrupt/torn when the journal was opened. *)

val path : t -> string

val close : t -> unit
(** Close the append descriptor (entries stay readable). *)
