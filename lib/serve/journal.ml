(* Warm-state journal: an append-only log of the instances the daemon
   answered, so a restarted process can rebuild its warm handle cache
   instead of serving cold.

   Format (JSON lines, like the wire protocol):

     rtlb-journal v1
     {"sum": "<md5 hex of engine-tag + app>", "engine": "soa", "app": "..."}
     ...

   Every record carries its own checksum ([sum] is recomputed from the
   payload on load), so the trust discipline can match
   Rtfmt.Checkpoint: a record that fails to parse, fails its checksum,
   or is missing its trailing newline (a torn append) is dropped
   TOGETHER WITH EVERYTHING AFTER IT — a corrupt tail is never spliced
   into the warm set, and the clean prefix is immediately rewritten
   (atomically) so later appends never extend garbage.

   The log is bounded and log-structured: appends go through one
   O_APPEND fd (a single write per record), duplicates are moved to the
   front of the in-memory recency order without rewriting history, and
   once the file holds more than [2 * capacity] record lines it is
   compacted — rewritten through Atomic_io with just the live entries,
   oldest first.  A crash mid-compaction leaves the previous complete
   file (rename atomicity); a crash mid-append leaves a torn tail the
   next load drops.  Either way the journal is an optimization that can
   only lose warmth, never correctness. *)

module Json = Rtfmt.Json
module Tracer = Rtlb_obs.Tracer
module Chaos = Rtlb_par.Chaos

let header = "rtlb-journal v1"

type entry = { je_engine : [ `Record | `Soa ]; je_app : string }

type t = {
  path : string;
  capacity : int;
  tracer : Tracer.t;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr option;
  mutable order : (string * entry) list;  (* most recent first *)
  mutable file_lines : int;  (* record lines physically in the file *)
  mutable appends : int;  (* chaos replay key (journalcorrupt@N) *)
  mutable dropped : int;  (* corrupt-tail lines dropped at open *)
}

let engine_name = function `Record -> "record" | `Soa -> "soa"

let engine_of_name = function
  | "record" -> Some `Record
  | "soa" -> Some `Soa
  | _ -> None

let digest_hex engine app =
  Digest.to_hex
    (Digest.string
       ((match engine with `Record -> "record\x00" | `Soa -> "soa\x00") ^ app))

let render_entry e =
  Json.to_string ~indent:false
    (Json.Obj
       [
         ("sum", Json.Str (digest_hex e.je_engine e.je_app));
         ("engine", Json.Str (engine_name e.je_engine));
         ("app", Json.Str e.je_app);
       ])

(* One record line back into an entry; None means the line (and, per
   the tail discipline, everything after it) is untrusted. *)
let parse_entry line =
  match Json.parse line with
  | exception Json.Parse_error _ -> None
  | Json.Obj fields -> (
      match
        ( List.assoc_opt "sum" fields,
          List.assoc_opt "engine" fields,
          List.assoc_opt "app" fields )
      with
      | Some (Json.Str sum), Some (Json.Str engine), Some (Json.Str app) -> (
          match engine_of_name engine with
          | Some je_engine when digest_hex je_engine app = sum ->
              Some { je_engine; je_app = app }
          | _ -> None)
      | _ -> None)
  | _ -> None

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in_noerr ic;
      Some content

(* Split into lines, flagging a missing final newline: the last
   "line" of a torn append is not a record, it is debris. *)
let lines_of content =
  let n = String.length content in
  if n = 0 then ([], false)
  else
    let complete = content.[n - 1] = '\n' in
    let body = if complete then String.sub content 0 (n - 1) else content in
    let lines = String.split_on_char '\n' body in
    if complete then (lines, false)
    else
      match List.rev lines with
      | _torn :: rest -> (List.rev rest, true)
      | [] -> ([], true)

let dedup_front entries =
  (* keep each digest's most recent occurrence; input newest first *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (digest, _) ->
      if Hashtbl.mem seen digest then false
      else begin
        Hashtbl.add seen digest ();
        true
      end)
    entries

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go (max 0 n) l

(* Rewrite the file from the live set (compaction, corrupt-tail repair,
   capacity trim), atomically, and reopen the append fd. *)
let rewrite t =
  (match t.fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None
  | None -> ());
  Rtfmt.Atomic_io.write_atomic t.path (fun oc ->
      output_string oc (header ^ "\n");
      List.iter
        (fun (_, e) -> output_string oc (render_entry e ^ "\n"))
        (List.rev t.order));
  t.file_lines <- List.length t.order;
  t.fd <-
    Some (Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644)

let open_ ?(tracer = Tracer.null) ~capacity path =
  if capacity < 1 then invalid_arg "Journal.open_: capacity must be >= 1";
  let t =
    {
      path;
      capacity;
      tracer;
      mutex = Mutex.create ();
      fd = None;
      order = [];
      file_lines = 0;
      appends = 0;
      dropped = 0;
    }
  in
  let clean =
    match read_file path with
    | None | Some "" ->
        t.order <- [];
        false  (* fresh or unreadable: write header below *)
    | Some content -> (
        let lines, torn = lines_of content in
        match lines with
        | first :: records when first = header ->
            (* walk the records; the first untrusted one poisons the
               rest of the file *)
            let rec walk acc dropped = function
              | [] -> (acc, dropped)
              | line :: rest -> (
                  match parse_entry line with
                  | Some e ->
                      walk ((digest_hex e.je_engine e.je_app, e) :: acc)
                        dropped rest
                  | None -> (acc, List.length rest + 1))
            in
            let newest_first, dropped = walk [] 0 records in
            t.dropped <- dropped + (if torn then 1 else 0);
            t.order <- take capacity (dedup_front newest_first);
            t.file_lines <- List.length records - dropped;
            (* clean only if nothing was dropped, deduped or trimmed *)
            t.dropped = 0 && t.file_lines = List.length t.order
        | _ ->
            (* missing or corrupt header: the whole file is untrusted *)
            t.dropped <- List.length lines + (if torn then 1 else 0);
            t.order <- [];
            false)
  in
  if clean then
    t.fd <-
      Some
        (Unix.openfile t.path
           [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
           0o644)
  else rewrite t;
  t

let write_line fd line =
  let payload = Bytes.of_string line in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then
      match Unix.write fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
  in
  push 0

let record t engine ~app =
  let digest = digest_hex engine app in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.order with
      | (d, _) :: _ when d = digest -> ()  (* already the most recent *)
      | order ->
          let entry = { je_engine = engine; je_app = app } in
          t.order <-
            take t.capacity
              ((digest, entry) :: List.filter (fun (d, _) -> d <> digest) order);
          (match t.fd with
          | None -> ()
          | Some fd -> (
              let seq = t.appends in
              t.appends <- seq + 1;
              try
                write_line fd (render_entry entry ^ "\n");
                t.file_lines <- t.file_lines + 1;
                (* chaos: garble the tail the way a torn write would —
                   the next open must drop it, never trust it *)
                if Chaos.journal_corrupt seq then
                  write_line fd "\xff\xfe{torn journal tail";
                if t.file_lines > max (2 * t.capacity) 8 then rewrite t
              with Unix.Unix_error _ | Sys_error _ ->
                (* disk trouble never fails a request; the journal just
                   stops gaining warmth *)
                ())))

let entries t =
  Mutex.lock t.mutex;
  let es = List.map snd t.order in
  Mutex.unlock t.mutex;
  es

let length t =
  Mutex.lock t.mutex;
  let n = List.length t.order in
  Mutex.unlock t.mutex;
  n

let dropped_tail t = t.dropped

let path t = t.path

let close t =
  Mutex.lock t.mutex;
  (match t.fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None
  | None -> ());
  Mutex.unlock t.mutex
