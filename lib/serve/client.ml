(* Minimal JSON-lines client for the bound-query daemon.

   One connection, one thread: writes loop on short writes (the server
   side of the same discipline lives in Server.locked_writer) and reads
   go through Line_reader, so an oversized or torn reply is detected
   rather than silently mangled.  Replies are matched to requests by
   the echoed "id"; out-of-order arrivals (possible under pipelining
   with priority admission) are stashed until their request asks. *)

module Json = Rtfmt.Json

type t = {
  fd : Unix.file_descr;
  lr : Line_reader.t;
  mutable next_id : int;
  mutable stash : string list;  (* out-of-order raw reply lines *)
  mutable closed : bool;
}

let sleep_s s = ignore (Unix.select [] [] [] s)

(* Connect backoff: exponential from 5 ms doubling to a 200 ms cap,
   scaled by a per-attempt jitter factor in [0.5, 1.0) (golden-ratio
   hash of the attempt number) — a fleet of clients racing the same
   daemon's startup spreads out instead of retrying in lockstep. *)
let backoff_s attempt =
  let base = 0.005 *. float_of_int (1 lsl min attempt 6) in
  let capped = Float.min base 0.2 in
  let jitter =
    float_of_int (((attempt + 1) * 0x9E3779B1) land 0xffff) /. 65536.0
  in
  capped *. (0.5 +. (0.5 *. jitter))

let connect_sockaddr ?(retry_for = 0.0) addr =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go attempt =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        (Unix.Unix_error
           (((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN) as err), _, _) as
         exn) ->
        (* the daemon may still be binding its listeners *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () < deadline then begin
          sleep_s (backoff_s attempt);
          go (attempt + 1)
        end
        else if attempt > 0 then
          failwith
            (Printf.sprintf
               "Client: connect failed after %d attempts over %.3fs: %s"
               (attempt + 1) retry_for (Unix.error_message err))
        else raise exn
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let fd = go 0 in
  (match addr with
  | Unix.ADDR_INET _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true
      with Unix.Unix_error _ -> ())
  | Unix.ADDR_UNIX _ -> ());
  { fd; lr = Line_reader.create fd; next_id = 0; stash = []; closed = false }

let connect_unix ?retry_for path =
  connect_sockaddr ?retry_for (Unix.ADDR_UNIX path)

let connect_tcp ?retry_for ~host ~port () =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | h when Array.length h.Unix.h_addr_list > 0 -> h.Unix.h_addr_list.(0)
        | _ | (exception Not_found) ->
            invalid_arg (Printf.sprintf "Client: cannot resolve host %S" host))
  in
  connect_sockaddr ?retry_for (Unix.ADDR_INET (addr, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t s =
  let payload = Bytes.of_string s in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then
      match Unix.write t.fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (match Unix.select [] [ t.fd ] [] 0.2 with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          push off
  in
  push 0

(* The daemon echoes the id as the reply's FIRST field and renders
   compactly, so a reply for id X begins with exactly this prefix —
   replies can be routed without parsing them (compare [Line_reader]'s
   cap on the other side: both ends stay O(bytes) per frame). *)
let id_prefix want = "{\"id\": " ^ Protocol.to_line want ^ ","

let has_prefix ~prefix line =
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let take_stashed t ~prefix =
  let rec go acc = function
    | [] -> None
    | line :: rest when has_prefix ~prefix line ->
        t.stash <- List.rev_append acc rest;
        Some line
    | line :: rest -> go (line :: acc) rest
  in
  go [] t.stash

let rec recv_line t ~prefix =
  match take_stashed t ~prefix with
  | Some line -> Ok line
  | None -> (
      match Line_reader.read t.lr ~stop:(fun () -> t.closed) with
      | Line_reader.Eof -> Error "connection closed by server"
      | Line_reader.Overflow -> Error "oversized reply frame"
      | Line_reader.Line line ->
          if has_prefix ~prefix line then Ok line
          else begin
            t.stash <- line :: t.stash;
            recv_line t ~prefix
          end)

let recv_raw t want = recv_line t ~prefix:(id_prefix want)

let recv t want =
  match recv_raw t want with
  | Error _ as e -> e
  | Ok line -> (
      match Json.parse line with
      | reply -> Ok reply
      | exception Json.Parse_error m ->
          Error ("unparseable reply frame: " ^ m))

(* Ensure the frame carries an id we can match the reply by; generate a
   fresh one when the caller did not pick their own. *)
let with_id t frame =
  match frame with
  | Json.Obj fields -> (
      match List.assoc_opt "id" fields with
      | Some id -> Ok (id, frame)
      | None ->
          let id = Json.Int t.next_id in
          t.next_id <- t.next_id + 1;
          Ok (id, Json.Obj (("id", id) :: fields)))
  | _ -> Error "request frame must be a JSON object"

let send t frame =
  match with_id t frame with
  | Error _ as e -> e
  | Ok (id, frame) -> (
      match write_all t (Protocol.to_line frame ^ "\n") with
      | () -> Ok id
      | exception Unix.Unix_error (e, _, _) ->
          Error ("send failed: " ^ Unix.error_message e))

let call t frame =
  match send t frame with Error _ as e -> e | Ok id -> recv t id

let send_batch t frames =
  (* one write for the whole burst: the daemon's reader drains it in a
     few large chunks instead of one wakeup per frame *)
  let ids = List.map (with_id t) frames in
  let buf = Buffer.create 4096 in
  List.iter
    (function
      | Error _ -> ()
      | Ok (_, frame) ->
          Buffer.add_string buf (Protocol.to_line frame);
          Buffer.add_char buf '\n')
    ids;
  match
    if Buffer.length buf > 0 then write_all t (Buffer.contents buf) else ()
  with
  | () -> List.map (Result.map fst) ids
  | exception Unix.Unix_error (e, _, _) ->
      let msg = "send failed: " ^ Unix.error_message e in
      List.map (fun _ -> Error msg) ids

let pipeline t frames =
  (* Write every frame before reading any reply: queued together, the
     daemon can classify and coalesce them as one burst. *)
  let ids = List.map (send t) frames in
  List.map (function Error _ as e -> e | Ok id -> recv t id) ids

let ping t =
  match call t (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok (Json.Obj fields) -> List.assoc_opt "ok" fields = Some (Json.Bool true)
  | _ -> false

(* ---- typed error decode ------------------------------------------ *)

(* Forward compatible: a newer daemon may reply with a stable code this
   client build has never heard of (say S399).  That must decode as a
   generic server error carrying the raw code string — raising (or
   returning None) on unknown codes would turn every protocol addition
   into a client-breaking change. *)
type server_error = {
  se_code : Protocol.code option;  (* None: a code newer than this client *)
  se_code_id : string;  (* raw, e.g. "S308" or an unknown "S399" *)
  se_message : string;
  se_retry_after_ms : int option;
}

let decode_error reply =
  match reply with
  | Json.Obj fields when List.assoc_opt "ok" fields = Some (Json.Bool false)
    -> (
      match List.assoc_opt "error" fields with
      | Some (Json.Obj err) ->
          let str k =
            match List.assoc_opt k err with Some (Json.Str s) -> s | _ -> ""
          in
          let se_code_id = str "code" in
          Some
            {
              se_code = Protocol.code_of_id se_code_id;
              se_code_id;
              se_message = str "message";
              se_retry_after_ms =
                (match List.assoc_opt "retry_after_ms" err with
                | Some (Json.Int ms) -> Some ms
                | _ -> None);
            }
      | _ ->
          (* ok:false with no error object: still a server error, just a
             malformed one — don't raise on it either *)
          Some
            {
              se_code = None;
              se_code_id = "";
              se_message = "missing error object";
              se_retry_after_ms = None;
            })
  | _ -> None

(* ---- failover ---------------------------------------------------- *)

module Failover = struct
  module Tracer = Rtlb_obs.Tracer

  (* A client that survives the daemon it is talking to.  The pending
     table maps each in-flight request id (as its reply-routing prefix)
     to the rendered frame; when the transport dies (EOF, ECONNRESET,
     EPIPE) the client rotates to the next endpoint, reconnects with
     backoff, carries the previous connection's stash across (replies
     that DID arrive are acknowledged — they must be delivered exactly
     once, not re-requested), and resends only the pending frames with
     no stashed reply.  Requests are idempotent (the daemon's analyses
     are deterministic), so a resent request yields a byte-identical
     reply and the caller cannot tell a crash happened. *)

  type conn = {
    eps : Unix.sockaddr array;
    mutable cursor : int;  (* index of the endpoint [inner] points at *)
    mutable inner : t;
    mutable fo_next_id : int;  (* survives reconnects, unlike inner's *)
    mutable pending : (string * string) list;  (* (prefix, frame line) *)
    fo_retry_for : float;
    max_failovers : int;
    fo_tracer : Tracer.t option;
    mutable fo_closed : bool;
  }

  let connect ?tracer ?(retry_for = 5.0) ?(max_failovers = 16) endpoints =
    match endpoints with
    | [] -> invalid_arg "Client.Failover.connect: no endpoints"
    | first :: _ ->
        {
          eps = Array.of_list endpoints;
          cursor = 0;
          inner = connect_sockaddr ~retry_for first;
          fo_next_id = 0;
          pending = [];
          fo_retry_for = retry_for;
          max_failovers;
          fo_tracer = tracer;
          fo_closed = false;
        }

  (* the single-connection close, shadowed by [Failover.close] below *)
  let close_inner = close

  let close c =
    if not c.fo_closed then begin
      c.fo_closed <- true;
      close_inner c.inner
    end

  let fo_with_id c frame =
    match frame with
    | Json.Obj fields -> (
        match List.assoc_opt "id" fields with
        | Some id -> Ok (id, frame)
        | None ->
            let id = Json.Int c.fo_next_id in
            c.fo_next_id <- c.fo_next_id + 1;
            Ok (id, Json.Obj (("id", id) :: fields)))
    | _ -> Error "request frame must be a JSON object"

  (* An acknowledgement is a COMPLETE reply: a stashed line that has
     the right prefix but does not parse is debris from a server that
     died mid-write — the request it answers is still unacknowledged
     and must be resent. *)
  let parses line =
    match Json.parse line with
    | _ -> true
    | exception Json.Parse_error _ -> false

  (* Rotate to the next endpoint and reconnect, carrying the stash of
     already-received replies across and resending only the pending
     frames that have no stashed reply. *)
  let rec reconnect c failovers =
    if c.fo_closed then Error "client closed"
    else if failovers > c.max_failovers then
      Error
        (Printf.sprintf "failover gave up after %d reconnect attempts"
           c.max_failovers)
    else begin
      c.cursor <- (c.cursor + 1) mod Array.length c.eps;
      match connect_sockaddr ~retry_for:c.fo_retry_for c.eps.(c.cursor) with
      | exception (Unix.Unix_error _ | Failure _) -> reconnect c (failovers + 1)
      | fresh -> (
          fresh.stash <- c.inner.stash;
          close_inner c.inner;
          c.inner <- fresh;
          Option.iter (fun tr -> Tracer.add tr Tracer.Failovers 1) c.fo_tracer;
          let unacked =
            List.filter
              (fun (prefix, _) ->
                not
                  (List.exists
                     (fun line -> has_prefix ~prefix line && parses line)
                     fresh.stash))
              c.pending
          in
          match
            List.iter (fun (_, line) -> write_all fresh (line ^ "\n")) unacked
          with
          | () -> Ok ()
          | exception Unix.Unix_error _ -> reconnect c (failovers + 1))
    end

  let send c frame =
    match fo_with_id c frame with
    | Error _ as e -> e
    | Ok (id, frame) -> (
        let line = Protocol.to_line frame in
        c.pending <- c.pending @ [ (id_prefix id, line) ];
        (* A failed write is not an error for the caller: the frame is
           pending, and the recv path reconnects and resends it. *)
        match write_all c.inner (line ^ "\n") with
        | () -> Ok id
        | exception Unix.Unix_error _ -> Ok id)

  let recv c id =
    let prefix = id_prefix id in
    let rec await failovers =
      let next =
        match take_stashed c.inner ~prefix with
        | Some line -> `Line line
        | None -> (
            match Line_reader.read c.inner.lr ~stop:(fun () -> c.fo_closed) with
            | Line_reader.Eof -> `Lost
            | Line_reader.Overflow -> `Fatal "oversized reply frame"
            | Line_reader.Line line ->
                if has_prefix ~prefix line then `Line line
                else begin
                  c.inner.stash <- line :: c.inner.stash;
                  `Again
                end
            | exception
                Unix.Unix_error
                  ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                `Lost)
      in
      match next with
      | `Again -> await failovers
      | `Line line -> (
          match Json.parse line with
          | reply ->
              c.pending <- List.filter (fun (p, _) -> p <> prefix) c.pending;
              Ok reply
          | exception Json.Parse_error _ ->
              (* torn reply: the server died mid-write.  Not an
                 acknowledgement — the request stays pending and the
                 reconnect path resends it. *)
              await failovers)
      | `Fatal msg -> Error msg
      | `Lost ->
          if c.fo_closed then Error "client closed"
          else (
            match reconnect c failovers with
            | Ok () -> await (failovers + 1)
            | Error msg -> Error msg)
    in
    await 0

  let call c frame =
    match send c frame with Error _ as e -> e | Ok id -> recv c id

  let pipeline c frames =
    let ids = List.map (send c) frames in
    List.map (function Error _ as e -> e | Ok id -> recv c id) ids
end
