(* Minimal JSON-lines client for the bound-query daemon.

   One connection, one thread: writes loop on short writes (the server
   side of the same discipline lives in Server.locked_writer) and reads
   go through Line_reader, so an oversized or torn reply is detected
   rather than silently mangled.  Replies are matched to requests by
   the echoed "id"; out-of-order arrivals (possible under pipelining
   with priority admission) are stashed until their request asks. *)

module Json = Rtfmt.Json

type t = {
  fd : Unix.file_descr;
  lr : Line_reader.t;
  mutable next_id : int;
  mutable stash : string list;  (* out-of-order raw reply lines *)
  mutable closed : bool;
}

let sleep_s s = ignore (Unix.select [] [] [] s)

let connect_sockaddr ?(retry_for = 0.0) addr =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when Unix.gettimeofday () < deadline ->
        (* the daemon may still be binding its listeners *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        sleep_s 0.005;
        go ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  let fd = go () in
  (match addr with
  | Unix.ADDR_INET _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true
      with Unix.Unix_error _ -> ())
  | Unix.ADDR_UNIX _ -> ());
  { fd; lr = Line_reader.create fd; next_id = 0; stash = []; closed = false }

let connect_unix ?retry_for path =
  connect_sockaddr ?retry_for (Unix.ADDR_UNIX path)

let connect_tcp ?retry_for ~host ~port () =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | h when Array.length h.Unix.h_addr_list > 0 -> h.Unix.h_addr_list.(0)
        | _ | (exception Not_found) ->
            invalid_arg (Printf.sprintf "Client: cannot resolve host %S" host))
  in
  connect_sockaddr ?retry_for (Unix.ADDR_INET (addr, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t s =
  let payload = Bytes.of_string s in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then
      match Unix.write t.fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (match Unix.select [] [ t.fd ] [] 0.2 with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          push off
  in
  push 0

(* The daemon echoes the id as the reply's FIRST field and renders
   compactly, so a reply for id X begins with exactly this prefix —
   replies can be routed without parsing them (compare [Line_reader]'s
   cap on the other side: both ends stay O(bytes) per frame). *)
let id_prefix want = "{\"id\": " ^ Protocol.to_line want ^ ","

let has_prefix ~prefix line =
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let take_stashed t ~prefix =
  let rec go acc = function
    | [] -> None
    | line :: rest when has_prefix ~prefix line ->
        t.stash <- List.rev_append acc rest;
        Some line
    | line :: rest -> go (line :: acc) rest
  in
  go [] t.stash

let rec recv_line t ~prefix =
  match take_stashed t ~prefix with
  | Some line -> Ok line
  | None -> (
      match Line_reader.read t.lr ~stop:(fun () -> t.closed) with
      | Line_reader.Eof -> Error "connection closed by server"
      | Line_reader.Overflow -> Error "oversized reply frame"
      | Line_reader.Line line ->
          if has_prefix ~prefix line then Ok line
          else begin
            t.stash <- line :: t.stash;
            recv_line t ~prefix
          end)

let recv_raw t want = recv_line t ~prefix:(id_prefix want)

let recv t want =
  match recv_raw t want with
  | Error _ as e -> e
  | Ok line -> (
      match Json.parse line with
      | reply -> Ok reply
      | exception Json.Parse_error m ->
          Error ("unparseable reply frame: " ^ m))

(* Ensure the frame carries an id we can match the reply by; generate a
   fresh one when the caller did not pick their own. *)
let with_id t frame =
  match frame with
  | Json.Obj fields -> (
      match List.assoc_opt "id" fields with
      | Some id -> Ok (id, frame)
      | None ->
          let id = Json.Int t.next_id in
          t.next_id <- t.next_id + 1;
          Ok (id, Json.Obj (("id", id) :: fields)))
  | _ -> Error "request frame must be a JSON object"

let send t frame =
  match with_id t frame with
  | Error _ as e -> e
  | Ok (id, frame) -> (
      match write_all t (Protocol.to_line frame ^ "\n") with
      | () -> Ok id
      | exception Unix.Unix_error (e, _, _) ->
          Error ("send failed: " ^ Unix.error_message e))

let call t frame =
  match send t frame with Error _ as e -> e | Ok id -> recv t id

let send_batch t frames =
  (* one write for the whole burst: the daemon's reader drains it in a
     few large chunks instead of one wakeup per frame *)
  let ids = List.map (with_id t) frames in
  let buf = Buffer.create 4096 in
  List.iter
    (function
      | Error _ -> ()
      | Ok (_, frame) ->
          Buffer.add_string buf (Protocol.to_line frame);
          Buffer.add_char buf '\n')
    ids;
  match
    if Buffer.length buf > 0 then write_all t (Buffer.contents buf) else ()
  with
  | () -> List.map (Result.map fst) ids
  | exception Unix.Unix_error (e, _, _) ->
      let msg = "send failed: " ^ Unix.error_message e in
      List.map (fun _ -> Error msg) ids

let pipeline t frames =
  (* Write every frame before reading any reply: queued together, the
     daemon can classify and coalesce them as one burst. *)
  let ids = List.map (send t) frames in
  List.map (function Error _ as e -> e | Ok id -> recv t id) ids

let ping t =
  match call t (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok (Json.Obj fields) -> List.assoc_opt "ok" fields = Some (Json.Bool true)
  | _ -> false
