(** Process-level supervision for [rtlb serve --supervised]: a tiny
    parent that binds the listening sockets {e itself}, forks the
    serving child over the inherited fds, and restarts it on abnormal
    exit — so a child crash never drops the endpoint or races the bind.

    Restart policy (mirroring {!Rtlb_par.Supervisor}): jittered
    exponential backoff between restarts, plus a sliding crash window —
    [max_crashes] abnormal exits within [crash_window_s] is a crash
    loop, reported with exit code {!crash_loop_exit} and a diagnostic
    instead of flapping forever.

    Signals: SIGTERM/SIGINT to the watchdog are forwarded to the child;
    a child that then exits 0 (its graceful drain) ends supervision
    with 0 — identical drain semantics with and without [--supervised].
    While a crashed child is being replaced, [health_file] (if any)
    reads [degraded]; the replacement child overwrites it with [ready]
    once it listens. *)

type config = {
  max_crashes : int;  (** Crash-loop threshold (default 5). *)
  crash_window_s : float;  (** Sliding window (default 30 s). *)
  backoff_initial_ms : int;  (** First restart delay (default 100). *)
  backoff_max_ms : int;  (** Backoff cap (default 5000). *)
  health_file : string option;
      (** Written [degraded] between a crash and the restart. *)
  log : string -> unit;  (** Diagnostics (default: stderr). *)
}

val default_config : config

val crash_loop_exit : int
(** Exit code ([3]) returned when the crash-loop detector trips. *)

val run :
  ?config:config ->
  endpoints:Server.endpoint list ->
  child:(generation:int -> (Unix.file_descr * string option) list -> unit) ->
  unit ->
  int
(** Bind the endpoints, then fork-and-supervise: [child ~generation
    sockets] runs in the forked process (generation 0, 1, ... across
    restarts) and should serve over the inherited sockets with
    {!Server.serve_bound}[ ~cleanup:false] until its own stop
    condition, then return — the child process exits 0.  An exception
    out of [child] is logged and still exits 0 (a {e refusing} child
    must not masquerade as a crash).  Returns the process exit code:
    the child's on graceful/terminating exit, {!crash_loop_exit} on a
    crash loop.  The watchdog closes the sockets and unlinks Unix
    socket paths when supervision ends.
    @raise Invalid_argument on an empty endpoint list. *)
