(** Atomic health-file reporting for external orchestrators
    ([rtlb serve --health-file PATH]).

    The file holds one word — [ready], [draining] or [degraded] — and
    is rewritten atomically on every transition, so a probe never sees
    a torn state.  The serving process writes [Ready]/[Draining]; the
    watchdog writes [Degraded] while a crashed child is being
    replaced. *)

type state = Ready | Draining | Degraded

val state_name : state -> string
val state_of_name : string -> state option

val write : path:string -> state -> unit
(** Atomic rewrite; write errors are swallowed (best-effort). *)

val read : path:string -> state option
(** [None] when the file is missing or holds an unknown word. *)
