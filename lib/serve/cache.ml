(* Fingerprint-keyed LRU cache of warm incremental handles.

   Handles are *checked out* (removed) while a request uses them and
   checked back in afterwards, so a handle is only ever touched by one
   worker at a time — required because the SoA engine mutates its
   packed arrays in place.  A request that crashes mid-use simply never
   checks its handle back in: the cache cannot be poisoned by a
   half-mutated handle, at the price of rebuilding it on the next miss
   (counted as an eviction). *)

type entry = { e_key : string; e_handle : Rtlb.Incremental.t }

type t = {
  capacity : int;
  tracer : Rtlb_obs.Tracer.t;
  mutex : Mutex.t;
  mutable entries : entry list;  (* most recently used first *)
}

let create ?(tracer = Rtlb_obs.Tracer.null) ~capacity () =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  { capacity; tracer; mutex = Mutex.create (); entries = [] }

let capacity t = t.capacity

let length t =
  Mutex.lock t.mutex;
  let n = List.length t.entries in
  Mutex.unlock t.mutex;
  n

let key ~engine system app =
  (match engine with `Record -> "record:" | `Soa -> "soa:")
  ^ Rtlb.Incremental.instance_fingerprint system app

let mem t k =
  Mutex.lock t.mutex;
  let found = List.exists (fun e -> e.e_key = k) t.entries in
  Mutex.unlock t.mutex;
  found

let checkout t k =
  Mutex.lock t.mutex;
  let found = ref None in
  t.entries <-
    List.filter
      (fun e ->
        if !found = None && e.e_key = k then (
          found := Some e.e_handle;
          false)
        else true)
      t.entries;
  Mutex.unlock t.mutex;
  !found

let checkin t k handle =
  Mutex.lock t.mutex;
  let survivors = List.filter (fun e -> e.e_key <> k) t.entries in
  let entries = { e_key = k; e_handle = handle } :: survivors in
  let rec take n = function
    | [] -> ([], 0)
    | _ :: rest when n = 0 -> ([], 1 + List.length rest)
    | e :: rest ->
        let kept, evicted = take (n - 1) rest in
        (e :: kept, evicted)
  in
  let kept, evicted = take t.capacity entries in
  t.entries <- kept;
  Mutex.unlock t.mutex;
  if evicted > 0 then Rtlb_obs.Tracer.add t.tracer Rtlb_obs.Tracer.Evictions evicted

let discard t =
  Rtlb_obs.Tracer.add t.tracer Rtlb_obs.Tracer.Evictions 1
