(** Per-tenant token-bucket quotas for {!Server}.

    Each tenant key (the optional ["tenant"] request field; anonymous
    requests share one bucket) gets a bucket created full at [burst]
    tokens, refilled continuously at [rate_per_s] and capped at
    [burst].  Every metered frame spends one token; an empty bucket is
    a {!Reject} carrying the milliseconds until a whole token has
    dripped back — clamped to [\[1, 60_000\]], so the hint is never
    zero or negative even when the bucket is about to refill.

    Thread-safety: one mutex over the bucket table; admission threads
    of every connection share the instance. *)

type t

type verdict =
  | Admit
  | Reject of { retry_after_ms : int }
      (** Becomes the [S307 quota_exceeded] reply. *)

val create :
  ?now:(unit -> int64) -> rate_per_s:float -> burst:float -> unit -> t
(** [now] (nanoseconds, monotonic) defaults to the real monotonic
    clock; tests inject a fake to pin the exhaustion/refill schedule.
    Negative clock intervals (possible across threads of a fake clock)
    never drain tokens.
    @raise Invalid_argument when [rate_per_s <= 0] or [burst < 1]. *)

val take : t -> string -> verdict
(** Spend one token from [tenant]'s bucket (lazily created full). *)

val rate_per_s : t -> float

val burst : t -> float

val tenants : t -> int
(** Buckets currently tracked. *)

val max_retry_ms : int
(** Upper clamp on the retry hint (60 s). *)
