(* The bound-query daemon: admission control, worker threads, warm
   handle cache, supervised execution, graceful drain.

   Life of a request (docs/ROBUSTNESS.md, "The serve daemon"):

     frame -> parse (S300/S301, inline)
           -> admission (draining -> S306; queue full -> S303+retry hint)
           -> worker thread: prepare (app parse; S302)
           -> Supervisor.supervise over the request body (retry with
              backoff; worker death heals through the full -> reduced ->
              sequential ladder; survivors are bit-identical answers,
              marked "degraded": true)
           -> reply (one line, request id echoed)

   Isolation invariants: a request failure of any kind becomes a
   structured error reply on its own connection — it never unwinds a
   worker thread (run_job catches everything) and never leaves a
   half-mutated handle in the cache (checkout/checkin discipline,
   lib/serve/cache.ml). *)

module Json = Rtfmt.Json
module Tracer = Rtlb_obs.Tracer
module Pool = Rtlb_par.Pool
module Supervisor = Rtlb_par.Supervisor
module Chaos = Rtlb_par.Chaos

type config = {
  cache_capacity : int;
  queue_capacity : int;
  workers : int;
  jobs : int;
  policy : Supervisor.policy;
  tracer : Tracer.t;
}

let default_config =
  {
    cache_capacity = 8;
    queue_capacity = 64;
    workers = 2;
    jobs = 2;
    policy = Supervisor.default_policy;
    tracer = Tracer.null;
  }

(* A frame larger than this is rejected as S300 before parsing — a
   runaway client must not balloon the daemon's heap. *)
let max_frame_bytes = 8 * 1024 * 1024

type job = {
  j_req : Protocol.request;
  j_deadline_ns : int64 option;  (* absolute; fixed at admission *)
  j_seq : int;  (* admitted-request sequence number (chaos replay key) *)
  j_reply : string -> unit;
}

type t = {
  cfg : config;
  cache : Cache.t;
  queue : job Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable draining : bool;
  mutable seq : int;
  mutable threads : Thread.t list;
}

(* ---- request execution (worker side) ----------------------------- *)

type prepared =
  | P_analysis of { system : Rtlb.System.t; app : Rtlb.App.t }
  | P_check of Rtlb.Validate.diag list

let prepare (req : Protocol.request) =
  match req.Protocol.op with
  | Protocol.Check -> (
      try Ok (P_check (Rtfmt.Appfile.check (Rtfmt.Appfile.parse_spec req.app)))
      with Rtfmt.Appfile.Parse_error (l, m) ->
        Ok
          (P_check
             [
               {
                 Rtlb.Validate.d_code = "E100";
                 d_severity = Rtlb.Validate.Error;
                 d_subject = "application";
                 d_message = m;
                 d_line = (if l > 0 then Some l else None);
               };
             ]))
  | Protocol.Analyze | Protocol.Whatif | Protocol.Sensitivity -> (
      try
        let { Rtfmt.Appfile.app; system } = Rtfmt.Appfile.parse req.app in
        let system =
          match system with
          | Some s -> s
          | None ->
              Rtlb.System.shared_uniform
                ~resources:(Rtlb.App.resource_set app)
        in
        Ok (P_analysis { system; app })
      with Rtfmt.Appfile.Parse_error (l, m) ->
        Error
          ( Protocol.Invalid_app,
            if l > 0 then Printf.sprintf "line %d: %s" l m else m ))
  | Protocol.Ping | Protocol.Stats ->
      (* answered inline at admission, never queued *)
      assert false

(* Checkout a warm handle or build one cold.  A cold build under an
   expired budget yields a partial base analysis, which must never be
   checked back in — [use] receives [cacheable = false] for it. *)
let with_handle t ?pool ?deadline_ns ~engine system app use =
  let key = Cache.key ~engine system app in
  match Cache.checkout t.cache key with
  | Some handle -> (
      match use ~cacheable:true handle with
      | result ->
          Cache.checkin t.cache key handle;
          result
      | exception e ->
          Cache.discard t.cache;
          raise e)
  | None -> (
      let handle =
        Rtlb.Incremental.create ~engine ?pool ?deadline_ns
          ~tracer:t.cfg.tracer system app
      in
      let cacheable =
        not (Rtlb.Analysis.is_partial (Rtlb.Incremental.base handle))
      in
      match use ~cacheable handle with
      | result ->
          if cacheable then Cache.checkin t.cache key handle;
          result
      | exception e -> raise e)

let exec_prepared t ?pool job prepared =
  let req = job.j_req in
  let deadline_ns = job.j_deadline_ns in
  match prepared with
  | P_check diags ->
      let errors = List.length (List.filter (fun d -> d.Rtlb.Validate.d_severity = Rtlb.Validate.Error) diags) in
      Json.Obj
        [
          ("diags", Json.List (List.map Protocol.json_of_diag diags));
          ("errors", Json.Int errors);
        ]
  | P_analysis { system; app } -> (
      match req.Protocol.op with
      | Protocol.Analyze ->
          with_handle t ?pool ?deadline_ns ~engine:req.Protocol.engine system
            app (fun ~cacheable:_ handle ->
              Json.of_analysis (Rtlb.Incremental.base handle))
      | Protocol.Whatif ->
          with_handle t ?pool ?deadline_ns ~engine:req.Protocol.engine system
            app (fun ~cacheable:_ handle ->
              let edited =
                try
                  Rtlb.Incremental.edit ?pool ?deadline_ns
                    ~tracer:t.cfg.tracer handle req.Protocol.edits
                with Invalid_argument m ->
                  (* bad task id / constraint-breaking edit: the request
                     is at fault, not the application *)
                  raise (Protocol.Reject (Protocol.Bad_request, m))
              in
              Json.of_whatif ~base:(Rtlb.Incremental.base handle) ~edited)
      | Protocol.Sensitivity ->
          let samples =
            Rtlb.Sensitivity.deadline_sweep ?pool ?deadline_ns
              ~tracer:t.cfg.tracer system app ~factors:req.Protocol.factors
          in
          Json.Obj
            [
              ("samples", Json.List (List.map Protocol.json_of_sample samples));
              ( "partial",
                Json.Bool
                  (List.exists
                     (fun s -> s.Rtlb.Sensitivity.s_partial)
                     samples) );
            ]
      | Protocol.Check | Protocol.Ping | Protocol.Stats -> assert false)

let run_job t ?pool job =
  let id = job.j_req.Protocol.id in
  let reply json = job.j_reply (Protocol.to_line json) in
  let outcome_reply () =
    match prepare job.j_req with
    | Error (code, msg) -> Protocol.error_reply ~id code msg
    | Ok prepared -> (
        (* The supervised body returns request-level faults as values so
           the supervisor only retries genuine crashes (and worker
           deaths, which walk the heal/degrade ladder). *)
        let body () =
          Chaos.on_request job.j_seq;
          try Ok (exec_prepared t ?pool job prepared) with
          | Protocol.Reject (code, msg) -> Error (code, msg)
          | Invalid_argument msg -> Error (Protocol.Invalid_app, msg)
        in
        let results, outcome =
          Supervisor.supervise ~policy:t.cfg.policy ?pool
            ~tracer:t.cfg.tracer body [| () |]
        in
        match results.(0) with
        | Some (Ok result) ->
            let degraded =
              outcome.Supervisor.o_status <> `Complete
              || outcome.Supervisor.o_level <> Supervisor.Full
            in
            if degraded then Tracer.add t.cfg.tracer Tracer.Degraded_replies 1;
            Protocol.ok_reply ~id ~op:job.j_req.Protocol.op ~degraded result
        | Some (Error (code, msg)) -> Protocol.error_reply ~id code msg
        | None ->
            let detail =
              match outcome.Supervisor.o_errors with
              | (_, m) :: _ -> m
              | [] -> "request dropped"
            in
            Protocol.error_reply ~id Protocol.Internal
              ("request failed after supervised retries: " ^ detail))
  in
  let json =
    try outcome_reply ()
    with e ->
      (* Nothing may unwind a worker thread: even a bug in the executor
         becomes a structured reply and the daemon keeps serving. *)
      Protocol.error_reply ~id Protocol.Internal (Printexc.to_string e)
  in
  try reply json
  with _ -> () (* client hung up; the reply has nowhere to go *)

(* ---- worker threads ---------------------------------------------- *)

let rec worker_loop t ?pool () =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.draining then None
    else (
      Condition.wait t.cond t.mutex;
      next ())
  in
  let job = next () in
  Mutex.unlock t.mutex;
  match job with
  | None -> ()
  | Some job ->
      run_job t ?pool job;
      worker_loop t ?pool ()

let worker t () =
  if t.cfg.jobs > 1 then
    Pool.with_pool ~jobs:t.cfg.jobs (fun pool -> worker_loop t ~pool ())
  else worker_loop t ()

let create ?(config = default_config) () =
  let t =
    {
      cfg = config;
      cache =
        Cache.create ~tracer:config.tracer ~capacity:config.cache_capacity ();
      queue = Queue.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      draining = false;
      seq = 0;
      threads = [];
    }
  in
  t.threads <-
    List.init (max 1 config.workers) (fun _ -> Thread.create (worker t) ());
  t

let cache t = t.cache

(* ---- admission (connection side) --------------------------------- *)

let stats_snapshot t =
  Json.Obj
    (List.map
       (fun c ->
         (Tracer.counter_name c, Json.Int (Tracer.counter t.cfg.tracer c)))
       Tracer.all_counters
    @ [
        ("cache_entries", Json.Int (Cache.length t.cache));
        ("queue_depth", Json.Int (Queue.length t.queue));
        ("draining", Json.Bool t.draining);
      ])

(* Hint for S303: clients should back off for roughly the time the
   standing queue needs to drain one slot per worker. *)
let retry_hint t = 25 * (1 + (t.cfg.queue_capacity / max 1 t.cfg.workers))

let submit t line reply_line =
  let tracer = t.cfg.tracer in
  let reject ~id code ?retry_after_ms msg =
    Tracer.add tracer Tracer.Requests_rejected 1;
    reply_line (Protocol.to_line (Protocol.error_reply ~id code ?retry_after_ms msg))
  in
  if String.length line > max_frame_bytes then
    reject ~id:Json.Null Protocol.Bad_frame
      (Printf.sprintf "frame exceeds %d bytes" max_frame_bytes)
  else
    match Json.parse line with
    | exception Json.Parse_error m ->
        reject ~id:Json.Null Protocol.Bad_frame ("invalid JSON frame: " ^ m)
    | frame -> (
        let id =
          match frame with
          | Json.Obj fields ->
              Option.value ~default:Json.Null (List.assoc_opt "id" fields)
          | _ -> Json.Null
        in
        match Protocol.request_of_json frame with
        | Error m -> reject ~id Protocol.Bad_request m
        | Ok req -> (
            match req.Protocol.op with
            | Protocol.Ping ->
                reply_line
                  (Protocol.to_line
                     (Protocol.ok_reply ~id ~op:Protocol.Ping
                        (Json.Obj [ ("pong", Json.Bool true) ])))
            | Protocol.Stats ->
                reply_line
                  (Protocol.to_line
                     (Protocol.ok_reply ~id ~op:Protocol.Stats
                        (stats_snapshot t)))
            | _ ->
                let j_deadline_ns =
                  Option.map
                    (fun ms ->
                      Int64.add (Pool.now_ns ())
                        (Int64.mul (Int64.of_int ms) 1_000_000L))
                    req.Protocol.deadline_ms
                in
                Mutex.lock t.mutex;
                if t.draining then (
                  Mutex.unlock t.mutex;
                  reject ~id Protocol.Draining
                    "daemon is draining; retry against a fresh instance")
                else if Queue.length t.queue >= t.cfg.queue_capacity then (
                  Mutex.unlock t.mutex;
                  reject ~id Protocol.Overloaded
                    ~retry_after_ms:(retry_hint t) "request queue is full")
                else begin
                  let j_seq = t.seq in
                  t.seq <- j_seq + 1;
                  Queue.push
                    { j_req = req; j_deadline_ns; j_seq; j_reply = reply_line }
                    t.queue;
                  Tracer.add tracer Tracer.Requests_admitted 1;
                  Condition.signal t.cond;
                  Mutex.unlock t.mutex
                end))

(* ---- drain -------------------------------------------------------- *)

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let join t =
  let threads = t.threads in
  t.threads <- [];
  List.iter Thread.join threads

let shutdown t =
  drain t;
  join t

(* ---- front ends --------------------------------------------------- *)

(* Incremental line reader over a raw fd, so the accept/stdio loops can
   poll a stop flag between reads without losing buffered bytes (mixing
   select(2) with OCaml's buffered channels would).  [read_line] returns
   [None] on EOF or when [stop] turns true between chunks. *)
type line_reader = {
  lr_fd : Unix.file_descr;
  lr_buf : Buffer.t;
  lr_chunk : bytes;
  mutable lr_eof : bool;
}

let line_reader fd =
  { lr_fd = fd; lr_buf = Buffer.create 4096; lr_chunk = Bytes.create 65536; lr_eof = false }

let take_line lr =
  let s = Buffer.contents lr.lr_buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear lr.lr_buf;
      Buffer.add_substring lr.lr_buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None ->
      if lr.lr_eof && s <> "" then (
        Buffer.clear lr.lr_buf;
        Some s)
      else None

let rec read_line lr ~stop =
  match take_line lr with
  | Some line -> Some line
  | None ->
      if lr.lr_eof || stop () then None
      else (
        (match Unix.select [ lr.lr_fd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.read lr.lr_fd lr.lr_chunk 0 (Bytes.length lr.lr_chunk) with
            | 0 -> lr.lr_eof <- true
            | n -> Buffer.add_subbytes lr.lr_buf lr.lr_chunk 0 n
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        read_line lr ~stop)

let locked_writer fd =
  let m = Mutex.create () in
  fun line ->
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        let payload = Bytes.of_string (line ^ "\n") in
        let rec push off =
          if off < Bytes.length payload then
            match Unix.write fd payload off (Bytes.length payload - off) with
            | n -> push (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        in
        try push 0 with Unix.Unix_error _ -> ())

let serve_stdio t ~stop =
  let reply = locked_writer Unix.stdout in
  let lr = line_reader Unix.stdin in
  let rec loop () =
    match read_line lr ~stop with
    | Some line ->
        if String.trim line <> "" then submit t line reply;
        loop ()
    | None -> ()
  in
  loop ();
  shutdown t

let handle_connection t fd () =
  let reply = locked_writer fd in
  let lr = line_reader fd in
  let rec loop () =
    match read_line lr ~stop:(fun () -> false) with
    | Some line ->
        if String.trim line <> "" then submit t line reply;
        loop ()
    | None -> ()
  in
  (try loop () with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_socket t ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      let rec accept_loop () =
        if not (stop ()) then (
          (match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | fd, _ -> ignore (Thread.create (handle_connection t fd) ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ())
      in
      accept_loop ();
      (* stop requested: connections still open keep their replies, new
         frames are refused with S306 while the queue drains *)
      shutdown t)
