(* The bound-query daemon: admission control, per-tenant quotas,
   two-level priority queues, what-if coalescing, worker threads, warm
   handle cache, supervised execution, graceful drain.

   Life of a request (docs/ROBUSTNESS.md, "The serve daemon"):

     frame -> parse (S300/S301, inline)
           -> quota (tenant bucket empty -> S307 + retry_after_ms)
           -> admission (draining -> S306; queue full -> S303+retry
              hint; warm/cheap -> high queue, cold -> low queue)
           -> worker thread: compatible queued what-ifs are batched
              onto one pass over the shared warm handle (coalescing);
              prepare (app parse; S302)
           -> Supervisor.supervise over the request body (retry with
              backoff; worker death heals through the full -> reduced ->
              sequential ladder; survivors are bit-identical answers,
              marked "degraded": true)
           -> reply (one line, request id echoed)

   Isolation invariants: a request failure of any kind becomes a
   structured error reply on its own connection — it never unwinds a
   worker thread (run_job catches everything) and never leaves a
   half-mutated handle in the cache (checkout/checkin discipline,
   lib/serve/cache.ml).  Coalesced jobs keep exactly the solo execution
   path (same checkout/checkin, same supervision) — they only share the
   parsed application and run back-to-back on one worker, so their
   replies are byte-identical to sequential one-shot execution. *)

module Json = Rtfmt.Json
module Tracer = Rtlb_obs.Tracer
module Pool = Rtlb_par.Pool
module Supervisor = Rtlb_par.Supervisor
module Chaos = Rtlb_par.Chaos

(* A frame larger than this is rejected as S300 before parsing — a
   runaway client must not balloon the daemon's heap.  Enforced both on
   complete lines (submit) and on buffered newline-free bytes
   (Line_reader). *)
let max_frame_bytes = 8 * 1024 * 1024

type config = {
  cache_capacity : int;
  queue_capacity : int;
  workers : int;
  jobs : int;
  policy : Supervisor.policy;
  tracer : Tracer.t;
  quota : Quota.t option;
  coalesce : bool;
  max_frame_bytes : int;
  journal : Journal.t option;
  breaker : Breaker.t option;
  health_file : string option;
  generation : int;
  die : unit -> unit;
}

let default_config =
  {
    cache_capacity = 8;
    queue_capacity = 64;
    workers = 2;
    jobs = 2;
    policy = Supervisor.default_policy;
    tracer = Tracer.null;
    quota = None;
    coalesce = true;
    max_frame_bytes;
    journal = None;
    breaker = None;
    health_file = None;
    generation = 0;
    die = (fun () -> Unix._exit 70);
  }

type job = {
  j_req : Protocol.request;
  j_deadline_ns : int64 option;  (* absolute; fixed at admission *)
  j_seq : int;  (* admitted-request sequence number (chaos replay key) *)
  j_digest : string;  (* engine + app text digest (coalescing/warmth key) *)
  j_high : bool;  (* which queue admitted it (stats bookkeeping) *)
  mutable j_taken : bool;
      (* claimed into an earlier batch; still physically queued (a
         tombstone — pops skip it), so extraction never rebuilds the
         queues: O(1) amortized however deep the pipeline *)
  j_replay : bool;
      (* journal rehydration, not client traffic: counted as a replay,
         never re-journaled, reply discarded *)
  j_reply : string -> unit;
}

type t = {
  cfg : config;
  cache : Cache.t;
  q_high : job Queue.t;
  q_low : job Queue.t;
  by_key : (string, job list ref) Hashtbl.t;
      (* op+digest -> queued jobs (reverse push order), the coalescing
         index; entries leave wholesale when a batch claims the key *)
  mutable n_high : int;  (* live (untaken) jobs per queue *)
  mutable n_low : int;
  mutex : Mutex.t;
  cond : Condition.t;
  warm : (string, unit) Hashtbl.t;
      (* digests whose handle was warm at least once — the cheap
         admission-side stand-in for a fingerprint cache probe *)
  mutable draining : bool;
  mutable seq : int;
  mutable threads : Thread.t list;
  started_ns : int64;
}

let job_digest (req : Protocol.request) =
  Digest.string
    ((match req.Protocol.engine with `Record -> "record\x00" | `Soa -> "soa\x00")
    ^ req.Protocol.app)

(* ---- request execution (worker side) ----------------------------- *)

type prepared =
  | P_analysis of { system : Rtlb.System.t; app : Rtlb.App.t }
  | P_check of Rtlb.Validate.diag list

let prepare (req : Protocol.request) =
  match req.Protocol.op with
  | Protocol.Check -> (
      try Ok (P_check (Rtfmt.Appfile.check (Rtfmt.Appfile.parse_spec req.app)))
      with Rtfmt.Appfile.Parse_error (l, m) ->
        Ok
          (P_check
             [
               {
                 Rtlb.Validate.d_code = "E100";
                 d_severity = Rtlb.Validate.Error;
                 d_subject = "application";
                 d_message = m;
                 d_line = (if l > 0 then Some l else None);
               };
             ]))
  | Protocol.Analyze | Protocol.Whatif | Protocol.Sensitivity -> (
      try
        let { Rtfmt.Appfile.app; system } = Rtfmt.Appfile.parse req.app in
        let system =
          match system with
          | Some s -> s
          | None ->
              Rtlb.System.shared_uniform
                ~resources:(Rtlb.App.resource_set app)
        in
        Ok (P_analysis { system; app })
      with Rtfmt.Appfile.Parse_error (l, m) ->
        Error
          ( Protocol.Invalid_app,
            if l > 0 then Printf.sprintf "line %d: %s" l m else m ))
  | Protocol.Ping | Protocol.Stats | Protocol.Health ->
      (* answered inline at admission, never queued *)
      assert false

(* Checkout a warm handle or build one cold.  A cold build under an
   expired budget yields a partial base analysis, which must never be
   checked back in — [use] receives [cacheable = false] for it. *)
let with_handle t ?pool ?deadline_ns ~engine system app use =
  let key = Cache.key ~engine system app in
  match Cache.checkout t.cache key with
  | Some handle -> (
      match use ~cacheable:true handle with
      | result ->
          Cache.checkin t.cache key handle;
          result
      | exception e ->
          Cache.discard t.cache;
          raise e)
  | None -> (
      Tracer.add t.cfg.tracer Tracer.Cold_builds 1;
      let handle =
        Rtlb.Incremental.create ~engine ?pool ?deadline_ns
          ~tracer:t.cfg.tracer system app
      in
      let cacheable =
        not (Rtlb.Analysis.is_partial (Rtlb.Incremental.base handle))
      in
      match use ~cacheable handle with
      | result ->
          if cacheable then Cache.checkin t.cache key handle;
          result
      | exception e -> raise e)

let exec_prepared t ?pool job prepared =
  let req = job.j_req in
  let deadline_ns = job.j_deadline_ns in
  match prepared with
  | P_check diags ->
      let errors = List.length (List.filter (fun d -> d.Rtlb.Validate.d_severity = Rtlb.Validate.Error) diags) in
      Json.Obj
        [
          ("diags", Json.List (List.map Protocol.json_of_diag diags));
          ("errors", Json.Int errors);
        ]
  | P_analysis { system; app } -> (
      match req.Protocol.op with
      | Protocol.Analyze ->
          with_handle t ?pool ?deadline_ns ~engine:req.Protocol.engine system
            app (fun ~cacheable:_ handle ->
              Json.of_analysis (Rtlb.Incremental.base handle))
      | Protocol.Whatif ->
          with_handle t ?pool ?deadline_ns ~engine:req.Protocol.engine system
            app (fun ~cacheable:_ handle ->
              let edited =
                try
                  Rtlb.Incremental.edit ?pool ?deadline_ns
                    ~tracer:t.cfg.tracer handle req.Protocol.edits
                with Invalid_argument m ->
                  (* bad task id / constraint-breaking edit: the request
                     is at fault, not the application *)
                  raise (Protocol.Reject (Protocol.Bad_request, m))
              in
              Json.of_whatif ~base:(Rtlb.Incremental.base handle) ~edited)
      | Protocol.Sensitivity ->
          let samples =
            Rtlb.Sensitivity.deadline_sweep ?pool ?deadline_ns
              ~tracer:t.cfg.tracer system app ~factors:req.Protocol.factors
          in
          Json.Obj
            [
              ("samples", Json.List (List.map Protocol.json_of_sample samples));
              ( "partial",
                Json.Bool
                  (List.exists
                     (fun s -> s.Rtlb.Sensitivity.s_partial)
                     samples) );
            ]
      | Protocol.Check | Protocol.Ping | Protocol.Stats | Protocol.Health ->
          assert false)

(* Bounded memory of instances that were warm at least once — stale
   entries merely misfile one request into the high queue. *)
let mark_warm t digest =
  Mutex.lock t.mutex;
  if Hashtbl.length t.warm > 4096 then Hashtbl.reset t.warm;
  Hashtbl.replace t.warm digest ();
  Mutex.unlock t.mutex

let breaker_applies op =
  match op with
  | Protocol.Analyze | Protocol.Whatif | Protocol.Sensitivity -> true
  | Protocol.Check | Protocol.Ping | Protocol.Stats | Protocol.Health -> false

(* Report the job's fate to its fingerprint's circuit breaker.  Only
   instance-level failures (S302 invalid_app, S305 internal) extend a
   streak: a bad edit (S301) blames the request, not the instance. *)
let note_breaker t job verdict =
  match t.cfg.breaker with
  | Some b when breaker_applies job.j_req.Protocol.op -> (
      match verdict with
      | `Success -> Breaker.success b job.j_digest
      | `Failure (Protocol.Invalid_app | Protocol.Internal) ->
          Breaker.failure b job.j_digest
      | `Failure _ -> ())
  | _ -> ()

let run_job t ?pool ?prepared job =
  (* killserver@I: an armed crash directive takes the whole process
     down right here — abruptly, like the SIGKILL it stands in for.
     The watchdog (holding the listening sockets) restarts a fresh
     child; failover clients resend whatever was never answered. *)
  if Chaos.server_kill job.j_seq then t.cfg.die ();
  let id = job.j_req.Protocol.id in
  let reply json = job.j_reply (Protocol.to_line json) in
  let outcome_reply () =
    let prepared =
      match prepared with Some p -> p | None -> prepare job.j_req
    in
    match prepared with
    | Error (code, msg) ->
        note_breaker t job (`Failure code);
        Protocol.error_reply ~id code msg
    | Ok prepared -> (
        (* The supervised body returns request-level faults as values so
           the supervisor only retries genuine crashes (and worker
           deaths, which walk the heal/degrade ladder). *)
        let body () =
          Chaos.on_request job.j_seq;
          try Ok (exec_prepared t ?pool job prepared) with
          | Protocol.Reject (code, msg) -> Error (code, msg)
          | Invalid_argument msg -> Error (Protocol.Invalid_app, msg)
        in
        let results, outcome =
          Supervisor.supervise ~policy:t.cfg.policy ?pool
            ~tracer:t.cfg.tracer body [| () |]
        in
        match results.(0) with
        | Some (Ok result) ->
            let degraded =
              outcome.Supervisor.o_status <> `Complete
              || outcome.Supervisor.o_level <> Supervisor.Full
            in
            if degraded then Tracer.add t.cfg.tracer Tracer.Degraded_replies 1;
            (match job.j_req.Protocol.op with
            | Protocol.Analyze | Protocol.Whatif ->
                mark_warm t job.j_digest;
                if job.j_replay then
                  Tracer.add t.cfg.tracer Tracer.Journal_replays 1
                else
                  Option.iter
                    (fun journal ->
                      Journal.record journal job.j_req.Protocol.engine
                        ~app:job.j_req.Protocol.app)
                    t.cfg.journal
            | _ -> ());
            note_breaker t job `Success;
            Protocol.ok_reply ~id ~op:job.j_req.Protocol.op ~degraded result
        | Some (Error (code, msg)) ->
            note_breaker t job (`Failure code);
            Protocol.error_reply ~id code msg
        | None ->
            let detail =
              match outcome.Supervisor.o_errors with
              | (_, m) :: _ -> m
              | [] -> "request dropped"
            in
            note_breaker t job (`Failure Protocol.Internal);
            Protocol.error_reply ~id Protocol.Internal
              ("request failed after supervised retries: " ^ detail))
  in
  let json =
    try outcome_reply ()
    with e ->
      (* Nothing may unwind a worker thread: even a bug in the executor
         becomes a structured reply and the daemon keeps serving. *)
      Protocol.error_reply ~id Protocol.Internal (Printexc.to_string e)
  in
  try reply json
  with _ -> () (* client hung up; the reply has nowhere to go *)

(* A coalesced batch shares one parse of the common application text;
   each job then runs the unchanged solo path (own supervision, own
   checkout/checkin), back-to-back on this worker — so the second and
   later jobs find the handle the first one warmed instead of racing
   other workers into redundant cold builds, and every reply is
   byte-identical to sequential one-shot execution. *)
let run_batch t ?pool = function
  | [] -> ()
  | [ job ] -> run_job t ?pool job
  | first :: _ as jobs ->
      Tracer.add t.cfg.tracer Tracer.Coalesced_queries (List.length jobs - 1);
      let prepared = prepare first.j_req in
      List.iter (fun job -> run_job t ?pool ~prepared job) jobs

(* ---- worker threads ---------------------------------------------- *)

let coalescible op =
  match op with
  | Protocol.Whatif | Protocol.Analyze -> true
  | Protocol.Sensitivity | Protocol.Check | Protocol.Ping | Protocol.Stats
  | Protocol.Health ->
      false

let batch_key (req : Protocol.request) digest =
  Protocol.op_name req.Protocol.op ^ ":" ^ digest

let note_taken t job =
  if job.j_high then t.n_high <- t.n_high - 1 else t.n_low <- t.n_low - 1

(* Callers hold [t.mutex].  High-priority first; a dequeued what-if (or
   analyze) pulls every compatible (same op, same engine+text digest)
   queued request into its batch, from both queues, via the [by_key]
   index — mates become tombstones where they sit. *)
let pop_batch t =
  let rec pop_skip q =
    match Queue.take_opt q with
    | None -> None
    | Some j when j.j_taken -> pop_skip q
    | Some j -> Some j
  in
  let job =
    match pop_skip t.q_high with Some j -> Some j | None -> pop_skip t.q_low
  in
  match job with
  | None -> None
  | Some job ->
      job.j_taken <- true;
      note_taken t job;
      let key = batch_key job.j_req job.j_digest in
      let mates =
        match Hashtbl.find_opt t.by_key key with
        | None -> []
        | Some l ->
            Hashtbl.remove t.by_key key;
            let mates =
              List.rev (List.filter (fun j -> not j.j_taken) !l)
            in
            List.iter
              (fun j ->
                j.j_taken <- true;
                note_taken t j)
              mates;
            mates
      in
      Some (job :: mates)

let rec worker_loop t ?pool () =
  Mutex.lock t.mutex;
  let rec next () =
    match pop_batch t with
    | Some batch -> Some batch
    | None ->
        if t.draining then None
        else (
          Condition.wait t.cond t.mutex;
          next ())
  in
  let batch = next () in
  Mutex.unlock t.mutex;
  match batch with
  | None -> ()
  | Some batch ->
      run_batch t ?pool batch;
      worker_loop t ?pool ()

let worker t () =
  if t.cfg.jobs > 1 then
    Pool.with_pool ~jobs:t.cfg.jobs (fun pool -> worker_loop t ~pool ())
  else worker_loop t ()

(* Queue every journaled instance as a low-priority internal analyze:
   rehydration rides the normal worker machinery, so client traffic
   (high queue, or simply ahead in line) naturally outranks it, and a
   concurrent real query for the same instance coalesces with its
   replay instead of double-building.  Replies go nowhere; successful
   replays count as [journal_replays]. *)
let rehydrate t =
  match t.cfg.journal with
  | None -> ()
  | Some journal ->
      let rec keep n = function
        | [] -> []
        | _ when n = 0 -> []
        | e :: rest -> e :: keep (n - 1) rest
      in
      let entries =
        keep (max 0 t.cfg.cache_capacity) (Journal.entries journal)
      in
      Mutex.lock t.mutex;
      List.iter
        (fun (e : Journal.entry) ->
          let req =
            {
              Protocol.id = Json.Null;
              op = Protocol.Analyze;
              app = e.Journal.je_app;
              engine = e.Journal.je_engine;
              deadline_ms = None;
              tenant = None;
              priority = Some Protocol.Low;
              edits = [];
              factors = [];
            }
          in
          let j_seq = t.seq in
          t.seq <- j_seq + 1;
          let job =
            {
              j_req = req;
              j_deadline_ns = None;
              j_seq;
              j_digest = job_digest req;
              j_high = false;
              j_taken = false;
              j_replay = true;
              j_reply = ignore;
            }
          in
          Queue.push job t.q_low;
          t.n_low <- t.n_low + 1;
          if t.cfg.coalesce then begin
            let key = batch_key req job.j_digest in
            match Hashtbl.find_opt t.by_key key with
            | Some l -> l := job :: !l
            | None -> Hashtbl.replace t.by_key key (ref [ job ])
          end)
        entries;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex

let create ?(config = default_config) () =
  let t =
    {
      cfg = config;
      cache =
        Cache.create ~tracer:config.tracer ~capacity:config.cache_capacity ();
      q_high = Queue.create ();
      q_low = Queue.create ();
      by_key = Hashtbl.create 64;
      n_high = 0;
      n_low = 0;
      mutex = Mutex.create ();
      cond = Condition.create ();
      warm = Hashtbl.create 64;
      draining = false;
      seq = 0;
      threads = [];
      started_ns = Pool.now_ns ();
    }
  in
  (* a watchdog-restarted child reports its own generation, so [stats]
     reflects restarts even though the watchdog is another process *)
  Tracer.add config.tracer Tracer.Server_restarts (max 0 config.generation);
  rehydrate t;
  t.threads <-
    List.init (max 0 config.workers) (fun _ -> Thread.create (worker t) ());
  t

let cache t = t.cache

let run_pending t =
  let rec go () =
    Mutex.lock t.mutex;
    let batch = pop_batch t in
    Mutex.unlock t.mutex;
    match batch with
    | None -> ()
    | Some batch ->
        run_batch t batch;
        go ()
  in
  go ()

(* ---- admission (connection side) --------------------------------- *)

let queue_depth t = t.n_high + t.n_low

let uptime_ms t =
  Int64.to_int (Int64.div (Int64.sub (Pool.now_ns ()) t.started_ns) 1_000_000L)

let health_status t =
  if t.draining then Health.Draining
  else if
    match t.cfg.breaker with Some b -> Breaker.open_count b > 0 | None -> false
  then Health.Degraded
  else Health.Ready

let stats_snapshot t =
  Json.Obj
    (List.map
       (fun c ->
         (Tracer.counter_name c, Json.Int (Tracer.counter t.cfg.tracer c)))
       Tracer.all_counters
    @ [
        ("uptime_ms", Json.Int (uptime_ms t));
        ("cache_entries", Json.Int (Cache.length t.cache));
        ( "journal_entries",
          match t.cfg.journal with
          | Some j -> Json.Int (Journal.length j)
          | None -> Json.Null );
        ( "breaker_open",
          match t.cfg.breaker with
          | Some b -> Json.Int (Breaker.open_count b)
          | None -> Json.Null );
        ("queue_depth", Json.Int (queue_depth t));
        ("queue_high", Json.Int t.n_high);
        ("queue_low", Json.Int t.n_low);
        ( "quota_tenants",
          match t.cfg.quota with
          | Some q -> Json.Int (Quota.tenants q)
          | None -> Json.Null );
        ("draining", Json.Bool t.draining);
      ])

let health_snapshot t =
  Json.Obj
    [
      ("status", Json.Str (Health.state_name (health_status t)));
      ("uptime_ms", Json.Int (uptime_ms t));
      ("generation", Json.Int t.cfg.generation);
      ( "journal_entries",
        match t.cfg.journal with
        | Some j -> Json.Int (Journal.length j)
        | None -> Json.Null );
      ( "breaker_open",
        match t.cfg.breaker with
        | Some b -> Json.Int (Breaker.open_count b)
        | None -> Json.Null );
    ]

(* Hint for S303: clients should back off for roughly the time the
   standing (not the worst-case) queue needs to drain one slot per
   worker.  Clamped so a drained queue still hints at least 1 ms and a
   pathological configuration never hints more than 30 s. *)
let retry_hint_ms ~workers ~depth =
  let ms = 25 * (1 + (max 0 depth / max 1 workers)) in
  if ms < 1 then 1 else if ms > 30_000 then 30_000 else ms

let retry_hint t = retry_hint_ms ~workers:t.cfg.workers ~depth:(queue_depth t)

let submit t line reply_line =
  let tracer = t.cfg.tracer in
  let reject ~id code ?retry_after_ms msg =
    Tracer.add tracer Tracer.Requests_rejected 1;
    reply_line (Protocol.to_line (Protocol.error_reply ~id code ?retry_after_ms msg))
  in
  if String.length line > t.cfg.max_frame_bytes then
    reject ~id:Json.Null Protocol.Bad_frame
      (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame_bytes)
  else
    match Json.parse line with
    | exception Json.Parse_error m ->
        reject ~id:Json.Null Protocol.Bad_frame ("invalid JSON frame: " ^ m)
    | frame -> (
        let id =
          match frame with
          | Json.Obj fields ->
              Option.value ~default:Json.Null (List.assoc_opt "id" fields)
          | _ -> Json.Null
        in
        match Protocol.request_of_json frame with
        | Error m -> reject ~id Protocol.Bad_request m
        | Ok req -> (
            match req.Protocol.op with
            | Protocol.Ping ->
                reply_line
                  (Protocol.to_line
                     (Protocol.ok_reply ~id ~op:Protocol.Ping
                        (Json.Obj [ ("pong", Json.Bool true) ])))
            | Protocol.Stats ->
                reply_line
                  (Protocol.to_line
                     (Protocol.ok_reply ~id ~op:Protocol.Stats
                        (stats_snapshot t)))
            | Protocol.Health ->
                reply_line
                  (Protocol.to_line
                     (Protocol.ok_reply ~id ~op:Protocol.Health
                        (health_snapshot t)))
            | _ -> (
                let tenant = Option.value ~default:"" req.Protocol.tenant in
                match
                  match t.cfg.quota with
                  | None -> Quota.Admit
                  | Some q -> Quota.take q tenant
                with
                | Quota.Reject { retry_after_ms } ->
                    Tracer.add tracer Tracer.Quota_rejections 1;
                    reject ~id Protocol.Quota_exceeded ~retry_after_ms
                      (if tenant = "" then "anonymous tenant is over quota"
                       else Printf.sprintf "tenant %S is over quota" tenant)
                | Quota.Admit -> (
                    let j_deadline_ns =
                      Option.map
                        (fun ms ->
                          Int64.add (Pool.now_ns ())
                            (Int64.mul (Int64.of_int ms) 1_000_000L))
                        req.Protocol.deadline_ms
                    in
                    let j_digest = job_digest req in
                    (* fast-fail a tripped instance before it costs a
                       queue slot or a worker pass *)
                    match
                      match t.cfg.breaker with
                      | Some b when breaker_applies req.Protocol.op ->
                          Breaker.check b j_digest
                      | _ -> Breaker.Proceed
                    with
                    | Breaker.Fast_fail { retry_after_ms } ->
                        reject ~id Protocol.Circuit_open ~retry_after_ms
                          "instance circuit breaker is open after repeated \
                           analysis failures"
                    | Breaker.Proceed | Breaker.Probe ->
                    Mutex.lock t.mutex;
                    if t.draining then (
                      Mutex.unlock t.mutex;
                      reject ~id Protocol.Draining
                        "daemon is draining; retry against a fresh instance")
                    else if queue_depth t >= t.cfg.queue_capacity then begin
                      let hint = retry_hint t in
                      Mutex.unlock t.mutex;
                      reject ~id Protocol.Overloaded ~retry_after_ms:hint
                        "request queue is full"
                    end
                    else begin
                      let j_seq = t.seq in
                      t.seq <- j_seq + 1;
                      let high =
                        match req.Protocol.priority with
                        | Some Protocol.High -> true
                        | Some Protocol.Low -> false
                        | None ->
                            (* cheap or warm goes first: check never
                               analyzes, and a digest seen warm means the
                               handle cache probably still has it *)
                            req.Protocol.op = Protocol.Check
                            || Hashtbl.mem t.warm j_digest
                      in
                      let job =
                        {
                          j_req = req;
                          j_deadline_ns;
                          j_seq;
                          j_digest;
                          j_high = high;
                          j_taken = false;
                          j_replay = false;
                          j_reply = reply_line;
                        }
                      in
                      if high then begin
                        Queue.push job t.q_high;
                        t.n_high <- t.n_high + 1
                      end
                      else begin
                        Queue.push job t.q_low;
                        t.n_low <- t.n_low + 1
                      end;
                      if t.cfg.coalesce && coalescible req.Protocol.op then begin
                        let key = batch_key req j_digest in
                        match Hashtbl.find_opt t.by_key key with
                        | Some l -> l := job :: !l
                        | None -> Hashtbl.replace t.by_key key (ref [ job ])
                      end;
                      Tracer.add tracer Tracer.Requests_admitted 1;
                      Condition.signal t.cond;
                      Mutex.unlock t.mutex
                    end))))

(* ---- drain -------------------------------------------------------- *)

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Option.iter
    (fun path -> Health.write ~path Health.Draining)
    t.cfg.health_file

let join t =
  let threads = t.threads in
  t.threads <- [];
  List.iter Thread.join threads

let shutdown t =
  drain t;
  join t

(* ---- front ends --------------------------------------------------- *)

let locked_writer fd =
  let m = Mutex.create () in
  fun line ->
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        let payload = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length payload in
        let rec push off =
          if off < len then
            match Unix.write fd payload off (len - off) with
            | n -> push (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                (* Non-blocking or slow peer: wait for writability and
                   resume at the same offset — a short write must never
                   truncate a frame or tear it across another thread's
                   write. *)
                (match Unix.select [] [ fd ] [] 0.2 with
                | _ -> ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
                push off
        in
        try push 0 with Unix.Unix_error _ -> ())

let overflow_line t =
  Protocol.to_line
    (Protocol.error_reply ~id:Json.Null Protocol.Bad_frame
       (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame_bytes))

let note_ready t =
  Option.iter
    (fun path -> Health.write ~path Health.Ready)
    t.cfg.health_file

let serve_stdio t ~stop =
  note_ready t;
  let reply = locked_writer Unix.stdout in
  let lr = Line_reader.create ~max_bytes:t.cfg.max_frame_bytes Unix.stdin in
  let rec loop () =
    match Line_reader.read lr ~stop with
    | Line_reader.Line line ->
        if String.trim line <> "" then submit t line reply;
        loop ()
    | Line_reader.Eof -> ()
    | Line_reader.Overflow ->
        Tracer.add t.cfg.tracer Tracer.Requests_rejected 1;
        reply (overflow_line t)
  in
  loop ();
  shutdown t

let handle_connection t fd () =
  (* a deep outbound kernel buffer keeps slow reply consumers from
     stalling the worker threads mid-pipeline (best effort) *)
  (try Unix.setsockopt_int fd Unix.SO_SNDBUF (4 * 1024 * 1024)
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let reply = locked_writer fd in
  let lr = Line_reader.create ~max_bytes:t.cfg.max_frame_bytes fd in
  let rec loop () =
    match Line_reader.read lr ~stop:(fun () -> false) with
    | Line_reader.Line line ->
        if String.trim line <> "" then submit t line reply;
        loop ()
    | Line_reader.Eof -> ()
    | Line_reader.Overflow ->
        (* runaway frame: structured refusal, then drop the connection —
           the peer is either broken or hostile *)
        Tracer.add t.cfg.tracer Tracer.Requests_rejected 1;
        reply (overflow_line t)
  in
  (try loop () with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

type endpoint = Unix_path of string | Tcp of string * int

let bind_endpoint = function
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind sock (Unix.ADDR_UNIX path);
         Unix.listen sock 64
       with e ->
         (try Unix.close sock with Unix.Unix_error _ -> ());
         raise e);
      (sock, Some path)
  | Tcp (host, port) ->
      let addr =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | h when Array.length h.Unix.h_addr_list > 0 ->
                h.Unix.h_addr_list.(0)
            | _ | (exception Not_found) ->
                invalid_arg
                  (Printf.sprintf "serve: cannot resolve host %S" host))
      in
      let sockaddr = Unix.ADDR_INET (addr, port) in
      let sock = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt sock Unix.SO_REUSEADDR true;
         Unix.bind sock sockaddr;
         Unix.listen sock 64
       with e ->
         (try Unix.close sock with Unix.Unix_error _ -> ());
         raise e);
      (sock, None)

let accept_loop t sock ~stop =
  let rec go () =
    if not (stop ()) then (
      (match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept sock with
          | fd, _ -> ignore (Thread.create (handle_connection t fd) ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ())
  in
  go ()

let bind_endpoints endpoints =
  if endpoints = [] then invalid_arg "serve: no endpoints";
  List.map bind_endpoint endpoints

(* Serve on sockets that are already bound and listening.  [cleanup]
   false leaves closing and unlinking to the true owner — the watchdog
   parent, which holds the same descriptors across child restarts so
   the endpoint never disappears. *)
let serve_bound t ?on_ready ?(cleanup = true) ~sockets ~stop () =
  if sockets = [] then invalid_arg "serve: no endpoints";
  let body () =
    (match on_ready with
    | Some f ->
        f
          (List.map
             (fun (sock, _) ->
               try Unix.getsockname sock
               with Unix.Unix_error _ -> Unix.ADDR_UNIX "?")
             sockets)
    | None -> ());
    note_ready t;
    let acceptors =
      List.map
        (fun (sock, _) -> Thread.create (fun () -> accept_loop t sock ~stop) ())
        sockets
    in
    List.iter Thread.join acceptors;
    (* stop requested: connections still open keep their replies, new
       frames are refused with S306 while the queue drains *)
    shutdown t
  in
  if cleanup then
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun (sock, path) ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            match path with
            | Some path -> (
                try Unix.unlink path with Unix.Unix_error _ -> ())
            | None -> ())
          sockets)
      body
  else body ()

let serve t ?on_ready ~endpoints ~stop () =
  serve_bound t ?on_ready ~cleanup:true ~sockets:(bind_endpoints endpoints)
    ~stop ()

let serve_socket t ~path ~stop = serve t ~endpoints:[ Unix_path path ] ~stop ()
