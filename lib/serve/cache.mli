(** Fingerprint-keyed LRU cache of warm {!Rtlb.Incremental} handles.

    Checkout/checkin discipline: {!checkout} {e removes} the handle, so
    at most one request ever touches a handle (the SoA engine mutates
    packed arrays in place); {!checkin} reinserts it most-recently-used
    and evicts the least-recently-used entries beyond [capacity]
    (bumping the [Evictions] counter).  A request that crashes mid-use
    never checks its handle back in — crash isolation by construction:
    the cache cannot hold a half-mutated handle. *)

type t

val create : ?tracer:Rtlb_obs.Tracer.t -> capacity:int -> unit -> t
(** [capacity] may be [0] (caching disabled: every checkin evicts).
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : t -> int

val length : t -> int
(** Entries currently resident (checked-out handles are not counted). *)

val key : engine:[ `Record | `Soa ] -> Rtlb.System.t -> Rtlb.App.t -> string
(** Cache key: engine tag + {!Rtlb.Incremental.instance_fingerprint} —
    the two engines never share handles. *)

val mem : t -> string -> bool
(** Is a handle for this key resident right now?  Advisory only — a
    concurrent {!checkout} can win the race; used for warm/cold
    priority classification, where a stale answer merely misfiles one
    request. *)

val checkout : t -> string -> Rtlb.Incremental.t option
(** Remove and return the handle for a key, if resident. *)

val checkin : t -> string -> Rtlb.Incremental.t -> unit
(** Insert (or reinsert) as most-recently-used; evicts beyond capacity.
    Never check in a handle whose base analysis is partial — budget-cut
    results must not serve later requests as if exhaustive. *)

val discard : t -> unit
(** Record a crash-isolation drop (a checked-out handle that will not
    be checked back in) in the [Evictions] counter. *)
