(** The bound-query daemon: a long-lived, multi-tenant server answering
    [analyze] / [whatif] / [sensitivity] / [check] requests over
    JSON-lines ({!Protocol}), built for fault tolerance:

    - {e admission control}: a bounded request queue; a full queue
      rejects with [S303 overloaded] and a [retry_after_ms] hint rather
      than building unbounded backlog.
    - {e warm handles}: per-instance {!Rtlb.Incremental} handles in a
      fingerprint-keyed LRU ({!Cache}), so repeat tenants skip the cold
      analysis.
    - {e isolation}: every request failure — malformed frame, invalid
      application, crash inside the analysis — becomes a structured
      error reply on its own connection; worker threads never unwind
      and cached handles are never poisoned.
    - {e supervision}: request bodies run under
      {!Rtlb_par.Supervisor.supervise}; transient crashes retry with
      backoff, a killed pool domain heals through the
      full → reduced → sequential ladder, and anything less than a
      clean run is flagged ["degraded": true] (the answer itself stays
      bit-identical to the one-shot CLI).
    - {e anytime budgets}: a request [deadline_ms] bounds its analysis
      from admission; an expired budget returns a valid reply flagged
      [partial], never nothing.  Partial results are never cached.
    - {e graceful drain}: {!serve_stdio} / {!serve_socket} finish
      in-flight requests, refuse new frames with [S306], and return
      (the CLI then exits 0).

    Counters ([requests_admitted], [requests_rejected], [evictions],
    [degraded_replies]) land on the configured tracer; the [stats] op
    snapshots them for clients. *)

type config = {
  cache_capacity : int;  (** Warm handles kept (default 8). *)
  queue_capacity : int;  (** Admission queue bound (default 64). *)
  workers : int;  (** Worker threads (default 2). *)
  jobs : int;
      (** Pool domains per worker (default 2); [<= 1] runs requests on
          the worker thread itself — no heal/degrade ladder. *)
  policy : Rtlb_par.Supervisor.policy;
  tracer : Rtlb_obs.Tracer.t;
}

val default_config : config

val max_frame_bytes : int
(** Frames beyond this many bytes are rejected with [S300]. *)

type t

val create : ?config:config -> unit -> t
(** Starts the worker threads immediately. *)

val cache : t -> Cache.t

val submit : t -> string -> (string -> unit) -> unit
(** [submit t line reply] processes one request frame.  Parse errors,
    protocol errors, drain refusals and overload rejections are
    answered synchronously; [ping] and [stats] are answered inline;
    anything else is enqueued and [reply] is called later (possibly
    from a worker thread) with the single-line reply.  [reply] must be
    thread-safe; {!serve_stdio} and {!serve_socket} wrap each sink in a
    mutex-guarded writer. *)

val drain : t -> unit
(** Stop admitting ([S306] from now on); queued requests still run. *)

val shutdown : t -> unit
(** {!drain}, then join the worker threads — returns once every
    admitted request has been answered. *)

val serve_stdio : t -> stop:(unit -> bool) -> unit
(** Serve request lines from stdin, replies to stdout, until EOF or
    [stop ()] turns true (polled at least every 200 ms); then drains
    and returns.  Used by [rtlb serve --stdio] and the tests. *)

val serve_socket : t -> path:string -> stop:(unit -> bool) -> unit
(** Listen on a Unix-domain socket, one thread per connection, until
    [stop ()] turns true; then refuses new frames, finishes in-flight
    requests (replies flush to their still-open connections), removes
    the socket file and returns. *)
