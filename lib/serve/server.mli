(** The bound-query daemon: a long-lived, multi-tenant server answering
    [analyze] / [whatif] / [sensitivity] / [check] requests over
    JSON-lines ({!Protocol}), built for fault tolerance:

    - {e admission control}: a bounded request queue; a full queue
      rejects with [S303 overloaded] and a [retry_after_ms] hint rather
      than building unbounded backlog.
    - {e per-tenant quotas}: an optional token bucket ({!Quota}) keyed
      by the request's ["tenant"] field; an empty bucket rejects with
      [S307 quota_exceeded] and a [retry_after_ms] hint — one noisy
      tenant cannot starve the rest.
    - {e priority admission}: two queues.  Explicit ["priority"] wins;
      otherwise [check] requests and requests whose instance digest has
      been warm before go high, cold analyses go low — a 40-task
      warm-cache what-if is never stuck behind a million-task cold
      build.
    - {e what-if coalescing}: compatible queued [whatif] requests (same
      engine and application text) are batched onto one worker pass —
      they share one parse and run back-to-back against the same warm
      handle, while keeping the solo execution path per job, so replies
      are byte-identical to sequential one-shot execution.
    - {e warm handles}: per-instance {!Rtlb.Incremental} handles in a
      fingerprint-keyed LRU ({!Cache}), so repeat tenants skip the cold
      analysis.
    - {e isolation}: every request failure — malformed frame, invalid
      application, crash inside the analysis — becomes a structured
      error reply on its own connection; worker threads never unwind
      and cached handles are never poisoned.
    - {e supervision}: request bodies run under
      {!Rtlb_par.Supervisor.supervise}; transient crashes retry with
      backoff, a killed pool domain heals through the
      full → reduced → sequential ladder, and anything less than a
      clean run is flagged ["degraded": true] (the answer itself stays
      bit-identical to the one-shot CLI).
    - {e anytime budgets}: a request [deadline_ms] bounds its analysis
      from admission; an expired budget returns a valid reply flagged
      [partial], never nothing.  Partial results are never cached.
    - {e bounded buffering}: request frames are capped at
      [max_frame_bytes] {e as they are buffered} ({!Line_reader}) — a
      client streaming an endless line without a newline is refused
      with [S300] and dropped before it can balloon the daemon's heap.
    - {e graceful drain}: {!serve_stdio} / {!serve} finish in-flight
      requests, refuse new frames with [S306], and return (the CLI then
      exits 0).

    Counters ([requests_admitted], [requests_rejected],
    [quota_rejections], [coalesced_queries], [evictions],
    [degraded_replies]) land on the configured tracer; the [stats] op
    snapshots them for clients. *)

type config = {
  cache_capacity : int;  (** Warm handles kept (default 8). *)
  queue_capacity : int;
      (** Admission bound over {e both} priority queues (default 64). *)
  workers : int;
      (** Worker threads (default 2).  [0] starts none — requests queue
          until {!run_pending} runs them on the calling thread
          (deterministic tests). *)
  jobs : int;
      (** Pool domains per worker (default 2); [<= 1] runs requests on
          the worker thread itself — no heal/degrade ladder. *)
  policy : Rtlb_par.Supervisor.policy;
  tracer : Rtlb_obs.Tracer.t;
  quota : Quota.t option;  (** [None] (default): no rate limiting. *)
  coalesce : bool;  (** What-if coalescing (default [true]). *)
  max_frame_bytes : int;  (** Frame/buffer cap (default 8 MiB). *)
  journal : Journal.t option;
      (** Warm-state journal: successful analyze/what-if instances are
          logged, and {!create} pre-warms the cache from it in the
          background (low priority).  [None] (default): no journal —
          a restart serves cold. *)
  breaker : Breaker.t option;
      (** Per-fingerprint circuit breakers: repeated S302/S305 failures
          fast-fail with [S308 circuit_open] at admission.  [None]
          (default): never fast-fail. *)
  health_file : string option;
      (** Atomically rewritten [ready]/[draining] on transitions
          ({!Health}); [None] (default): no file. *)
  generation : int;
      (** Watchdog restart generation (0 for the first child or an
          unsupervised daemon); reported as the [server_restarts]
          counter so [stats] shows restarts across process boundaries. *)
  die : unit -> unit;
      (** How a [killserver@I] chaos directive terminates the process
          (default [Unix._exit 70]); tests substitute a marker. *)
}

val default_config : config

val max_frame_bytes : int
(** Default frame cap: frames (and buffered newline-free bytes) beyond
    this many bytes are rejected with [S300]. *)

type t

val create : ?config:config -> unit -> t
(** Starts the worker threads immediately.  With a journal configured,
    also queues one low-priority internal analyze per journaled
    instance (newest first, capped at the cache capacity) — background
    rehydration that client traffic naturally outranks. *)

val cache : t -> Cache.t

val stats_snapshot : t -> Rtfmt.Json.t
(** The [stats] op's payload: every tracer counter plus [uptime_ms],
    [cache_entries], [journal_entries], [breaker_open], queue depths,
    quota tenant count and the draining flag. *)

val health_snapshot : t -> Rtfmt.Json.t
(** The [health] op's payload: [status] ([ready]/[draining]/[degraded]
    — degraded when any breaker is open), [uptime_ms], [generation],
    [journal_entries], [breaker_open]. *)

val submit : t -> string -> (string -> unit) -> unit
(** [submit t line reply] processes one request frame.  Parse errors,
    protocol errors, quota rejections, drain refusals and overload
    rejections are answered synchronously; [ping] and [stats] are
    answered inline; anything else is enqueued and [reply] is called
    later (possibly from a worker thread) with the single-line reply.
    [reply] must be thread-safe; {!serve_stdio} and {!serve} wrap each
    sink in {!locked_writer}. *)

val run_pending : t -> unit
(** Drain both queues on the calling thread (batching/coalescing
    exactly as a worker would), returning when they are empty.  For
    deterministic tests with [workers = 0]; safe but pointless
    alongside live workers. *)

val retry_hint_ms : workers:int -> depth:int -> int
(** The [retry_after_ms] hint sent with [S303]: scales with the standing
    queue depth per worker and is clamped to [\[1, 30_000\]] — never
    zero or negative, even for a drained queue. *)

val drain : t -> unit
(** Stop admitting ([S306] from now on); queued requests still run. *)

val shutdown : t -> unit
(** {!drain}, then join the worker threads — returns once every
    admitted request has been answered. *)

val locked_writer : Unix.file_descr -> string -> unit
(** A thread-safe frame writer: appends ["\n"] and writes the whole
    frame under a per-writer mutex, looping on short writes and waiting
    out [EAGAIN]/[EWOULDBLOCK] on non-blocking or slow descriptors — a
    frame is never truncated or torn across another thread's frame.  A
    write error (peer gone) drops the frame silently. *)

val serve_stdio : t -> stop:(unit -> bool) -> unit
(** Serve request lines from stdin, replies to stdout, until EOF or
    [stop ()] turns true (polled at least every 200 ms); then drains
    and returns.  Used by [rtlb serve --stdio] and the tests. *)

(** A listening endpoint: a Unix-domain socket path, or a TCP
    host/port ([Tcp (host, 0)] binds an ephemeral port — retrieve it
    via [on_ready]). *)
type endpoint = Unix_path of string | Tcp of string * int

val serve :
  t ->
  ?on_ready:(Unix.sockaddr list -> unit) ->
  endpoints:endpoint list ->
  stop:(unit -> bool) ->
  unit ->
  unit
(** Listen on every endpoint simultaneously (one acceptor thread each,
    one thread per connection), until [stop ()] turns true; then
    refuses new frames, finishes in-flight requests (replies flush to
    their still-open connections), closes the listeners, removes Unix
    socket files and returns.  [on_ready] fires once, after every
    endpoint is bound and listening, with their actual addresses (in
    [endpoints] order — ephemeral TCP ports resolved).
    @raise Invalid_argument on an empty [endpoints] list or an
    unresolvable TCP host. *)

val bind_endpoints : endpoint list -> (Unix.file_descr * string option) list
(** Bind and listen on every endpoint, returning the listening sockets
    paired with the Unix socket path to unlink at cleanup (if any).
    Used by the watchdog ({!Watchdog}) to hold the endpoints itself
    and hand them to each forked child.
    @raise Invalid_argument on an empty list or unresolvable host. *)

val serve_bound :
  t ->
  ?on_ready:(Unix.sockaddr list -> unit) ->
  ?cleanup:bool ->
  sockets:(Unix.file_descr * string option) list ->
  stop:(unit -> bool) ->
  unit ->
  unit
(** {!serve} over sockets already bound with {!bind_endpoints}.
    [cleanup] (default [true]) closes the sockets and unlinks the paths
    on return; a watchdog child passes [false] — the parent owns the
    descriptors, which is exactly why a child crash never drops the
    endpoint. *)

val serve_socket : t -> path:string -> stop:(unit -> bool) -> unit
(** [serve t ~endpoints:[Unix_path path]] — the single-socket case. *)
