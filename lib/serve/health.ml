(* Health-file protocol for external orchestrators.

   One word per state, one line, rewritten atomically (temp + rename)
   on every transition — a probe reading the file can never observe a
   torn write, only the previous or the next state.  The server writes
   "ready" once its listeners are up and "draining" when a drain
   starts; the watchdog writes "degraded" between a child crash and
   the replacement child's own "ready". *)

type state = Ready | Draining | Degraded

let state_name = function
  | Ready -> "ready"
  | Draining -> "draining"
  | Degraded -> "degraded"

let state_of_name = function
  | "ready" -> Some Ready
  | "draining" -> Some Draining
  | "degraded" -> Some Degraded
  | _ -> None

let write ~path state =
  try Rtfmt.Atomic_io.write_string_atomic path (state_name state ^ "\n")
  with Sys_error _ | Unix.Unix_error _ -> ()
(* health reporting is best-effort: an unwritable path must never take
   the daemon down with it *)

let read ~path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in_noerr ic;
      state_of_name (String.trim line)
