(** JSON-lines request/reply protocol for {!Server}.

    One request object per line; the reply (one line, compact JSON)
    echoes the request's ["id"] verbatim so clients may pipeline and
    match replies out of order.  Request shape:

    {v
    {"id": 7, "op": "analyze", "app": "task T1 compute=3 deadline=36 ...",
     "engine": "soa", "deadline_ms": 50}
    {"id": 8, "op": "whatif", "app": "...",
     "edits": [{"task": 0, "deadline": 40}]}
    {"id": 9, "op": "sensitivity", "app": "...", "factors": ["0.5", 1, "1.5"]}
    {"id": 10, "op": "check", "app": "..."}
    {"id": 11, "op": "ping"}
    {"id": 12, "op": "health"}
    v}

    Unknown fields, unknown ops and malformed payloads are rejected —
    never silently ignored (the same contract the [RTLB_CHAOS] parser
    keeps).  Every failure carries a stable [S3xx] code alongside the
    validation codes E100–E106; see docs/ROBUSTNESS.md for the table. *)

type op = Analyze | Whatif | Sensitivity | Check | Ping | Stats | Health

val op_name : op -> string
val op_of_name : string -> op option

(** Stable error codes: [S300] bad_frame (not JSON / frame too large),
    [S301] bad_request (bad shape or fields, invalid edit target),
    [S302] invalid_app (application text fails to parse or host),
    [S303] overloaded (admission queue full; reply carries
    [retry_after_ms]), [S304] deadline_expired (reserved — an expired
    [deadline_ms] budget returns a partial {e result}, not an error),
    [S305] internal (request crashed even after supervised retries),
    [S306] draining (daemon is shutting down), [S307] quota_exceeded
    (the tenant's token bucket is empty; reply carries
    [retry_after_ms]), [S308] circuit_open (the instance fingerprint's
    circuit breaker is open after repeated analysis failures; reply
    carries [retry_after_ms] — retry later or fix the application). *)
type code =
  | Bad_frame
  | Bad_request
  | Invalid_app
  | Overloaded
  | Deadline_expired
  | Internal
  | Draining
  | Quota_exceeded
  | Circuit_open

val code_id : code -> string
(** ["S300"] .. ["S308"]. *)

val code_name : code -> string

val code_of_id : string -> code option
(** Inverse of {!code_id}; [None] for codes this build does not know —
    forward-compatible clients must treat those as generic server
    errors, never crash on them ({!Client.decode_reply}). *)

val all_codes : code list
(** Every code, in [S300..] order. *)

exception Reject of code * string
(** Raised by request executors to fail with a specific code; never
    escapes {!Server} (it becomes the structured error reply). *)

(** Two-level admission priority.  Explicit ["priority"] wins; without
    it the server classifies: [check] requests and requests whose
    instance is already warm in the handle cache go [High], cold
    analyses go [Low] — so cheap warm-cache queries are never stuck
    behind a cold million-task analysis. *)
type priority = High | Low

val priority_name : priority -> string

type request = {
  id : Rtfmt.Json.t;  (** Echoed verbatim in the reply; [Null] when absent. *)
  op : op;
  app : string;  (** Application file text ({!Rtfmt.Appfile} format). *)
  engine : [ `Record | `Soa ];
  deadline_ms : int option;
      (** Per-request budget, measured from admission; an expired budget
          yields a reply flagged [partial], never an empty one. *)
  tenant : string option;
      (** Token-bucket quota key; requests without it share the
          anonymous bucket (when a quota is configured at all). *)
  priority : priority option;
  edits : Rtlb.Incremental.edit list;  (** [whatif] only. *)
  factors : float list;  (** [sensitivity] only. *)
}

val request_of_json : Rtfmt.Json.t -> (request, string) result
(** Strict: unknown fields, wrong types, empty edit/factor lists and
    op/field mismatches are all [Error] with a message naming the
    offending field. *)

val error_reply :
  id:Rtfmt.Json.t -> code -> ?retry_after_ms:int -> string -> Rtfmt.Json.t

val ok_reply :
  id:Rtfmt.Json.t -> op:op -> ?degraded:bool -> Rtfmt.Json.t -> Rtfmt.Json.t
(** [degraded] (default false) marks replies whose supervised execution
    fell back to the retry/heal/degrade ladder yet still produced the
    exact answer. *)

val json_of_sample : Rtlb.Sensitivity.sample -> Rtfmt.Json.t
(** Factor as a decimal string ({!Rtfmt.Json} has no float). *)

val json_of_diag : Rtlb.Validate.diag -> Rtfmt.Json.t

val to_line : Rtfmt.Json.t -> string
(** Compact (single-line) rendering — the wire format. *)
