(* Hand-rolled domain pool: a fixed worker set blocked on a condition
   variable, a chunked index queue per job, and index-keyed result slots
   so reductions are deterministic.  Only one job is active at a time;
   concurrent submitters queue on [idle].

   Invariant: [current = Some job] implies [job.next < job.total] — the
   claimer that takes the last chunk (or drains a failed/expired job)
   clears [current] and wakes the next submitter, while the job itself is
   only finished once [completed = total] (its last executing chunk wakes
   the submitter through [job_done]).

   Cooperative cancellation: a job may carry a wall-clock deadline.  The
   deadline is checked at every chunk claim — never mid-chunk — so a
   chunk that started before the budget ran out always completes, and the
   set of executed indices is a prefix of the claim order.  Skipped
   indices are counted in [skipped] so the submitter can tell a partial
   job from a complete one. *)

module For_testing = struct
  (* Fault-injection hooks, all triggered from tests only.  [inject] runs
     before every work-item body (worker domains and the inline path
     alike) and may raise or delay; [fail_spawns] makes the next N
     [Domain.spawn] attempts in [create] fail, exercising the
     shrink-on-spawn-failure path.  Both are set from the test domain
     before the pool is created or the job submitted, so the
     [Domain.spawn] / [Mutex.lock] edges order the writes. *)
  let inject : (int -> unit) option ref = ref None
  let fail_spawns = ref 0

  let reset () =
    inject := None;
    fail_spawns := 0
end

(* Monotonic, not gettimeofday: an NTP step of the wall clock must not
   fire (or starve) an analysis deadline. *)
let now_ns () = Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic

exception Worker_abort

exception Worker_failures of exn * int

let () =
  Printexc.register_printer (function
    | Worker_failures (e, suppressed) ->
        Some
          (Printf.sprintf
             "Pool.Worker_failures: %s (+%d suppressed worker failure%s)"
             (Printexc.to_string e) suppressed
             (if suppressed = 1 then "" else "s"))
    | _ -> None)

(* Process-wide cooperative cancellation, the hook behind the CLI's
   SIGINT/SIGTERM handling.  Only {e cancellable} jobs observe it (the
   partial-capable maps); strict maps such as [map_array] are atomic
   units whose callers cannot represent a hole, so they run to
   completion regardless. *)
let cancel_flag = Atomic.make false
let request_cancel () = Atomic.set cancel_flag true
let cancel_requested () = Atomic.get cancel_flag
let reset_cancel () = Atomic.set cancel_flag false

let expired ~cancellable deadline_ns =
  (cancellable && Atomic.get cancel_flag)
  ||
  match deadline_ns with
  | None -> false
  | Some d -> Int64.compare (now_ns ()) d >= 0

type job = {
  mutable next : int;  (* next unclaimed index *)
  total : int;
  chunk : int;
  body : int -> unit;
  deadline_ns : int64 option;
  cancellable : bool;  (* observes the process-wide cancel flag *)
  mutable completed : int;  (* indices executed or skipped *)
  mutable skipped : int;  (* indices abandoned by failure or budget expiry *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
  mutable suppressed : int;  (* worker failures after the first *)
  tracer : Rtlb_obs.Tracer.t;  (* Tracer.null when the job is untraced *)
}

type t = {
  lock : Mutex.t;
  has_work : Condition.t;  (* workers: a job arrived / shutting down *)
  job_done : Condition.t;  (* submitter: my job completed *)
  idle : Condition.t;  (* submitters: the single job slot freed *)
  mutable current : job option;
  mutable stopping : bool;
  mutable workers : (int * unit Domain.t) list;  (* by slot id *)
  mutable dead_slots : int list;  (* workers that died mid-run *)
  mutable slot_counter : int;  (* next fresh slot id for respawns *)
  mutable n_domains : int;  (* actual parallelism after spawn shrink *)
}

(* True on worker domains, and on a submitter while it executes job
   bodies: a submit from such a context would deadlock waiting for
   workers already busy underneath it, so it runs inline instead. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let size t = t.n_domains

(* Must hold [t.lock].  Claims the next chunk of the current job, or
   drains it after a failure or past its deadline; clears [current] (and
   wakes a queued submitter) once the last chunk is claimed. *)
let claim t =
  match t.current with
  | None -> None
  | Some job ->
      if
        job.failed <> None
        || expired ~cancellable:job.cancellable job.deadline_ns
      then begin
        (* Skip the unclaimed remainder; count it as completed so the
           submitter's wait terminates, and as skipped so it can tell. *)
        if job.failed = None then
          Rtlb_obs.Tracer.add job.tracer Rtlb_obs.Tracer.Deadline_cancels 1;
        let skipped = job.total - job.next in
        job.next <- job.total;
        job.completed <- job.completed + skipped;
        job.skipped <- job.skipped + skipped;
        t.current <- None;
        Condition.broadcast t.idle;
        if job.completed >= job.total then Condition.broadcast t.job_done;
        None
      end
      else begin
        let lo = job.next in
        let hi = min job.total (lo + job.chunk) in
        job.next <- hi;
        if hi >= job.total then begin
          t.current <- None;
          Condition.broadcast t.idle
        end;
        Some (job, lo, hi)
      end

(* Runs indices [lo, hi) with the lock released, recording the first
   exception and the completion count; failures after the first are
   counted in [suppressed] (and the [Worker_errors] tracer counter) so
   they are never silently dropped.  Returns [true] when the exception
   was {!Worker_abort} — the executing worker domain must die.  When the
   job is traced, the chunk runs inside a per-worker span and credits
   the executing domain with the bodies that ran to completion — an
   aborted body (injected fault, exception) is not counted, so
   per-worker item totals always equal the number of executed bodies. *)
let exec_chunk t job lo hi =
  let ran = ref 0 in
  let fatal = ref false in
  Rtlb_obs.Tracer.with_span job.tracer "chunk" (fun () ->
      try
        for i = lo to hi - 1 do
          (match !For_testing.inject with Some f -> f i | None -> ());
          job.body i;
          incr ran
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        (match e with Worker_abort -> fatal := true | _ -> ());
        Rtlb_obs.Tracer.add job.tracer Rtlb_obs.Tracer.Worker_errors 1;
        Mutex.lock t.lock;
        if job.failed = None then job.failed <- Some (e, bt)
        else job.suppressed <- job.suppressed + 1;
        Mutex.unlock t.lock);
  Rtlb_obs.Tracer.record_chunk job.tracer ~items:!ran;
  Mutex.lock t.lock;
  job.completed <- job.completed + (hi - lo);
  if job.completed >= job.total then Condition.broadcast t.job_done;
  Mutex.unlock t.lock;
  !fatal

let rec worker_step t slot =
  (* lock held on entry; released while executing *)
  match claim t with
  | Some (job, lo, hi) ->
      Mutex.unlock t.lock;
      let fatal = exec_chunk t job lo hi in
      Mutex.lock t.lock;
      if fatal then begin
        (* The worker dies: record the death so [heal] can join and
           respawn it.  The chunk's bookkeeping is already done, so the
           job still drains normally. *)
        t.dead_slots <- slot :: t.dead_slots;
        t.n_domains <- t.n_domains - 1;
        Mutex.unlock t.lock
      end
      else worker_step t slot
  | None ->
      if t.stopping then Mutex.unlock t.lock
      else begin
        Condition.wait t.has_work t.lock;
        worker_step t slot
      end

let worker t slot () =
  Domain.DLS.set inside_pool true;
  Mutex.lock t.lock;
  worker_step t slot

let spawn_worker t slot =
  if !For_testing.fail_spawns > 0 then begin
    For_testing.fail_spawns := !For_testing.fail_spawns - 1;
    failwith "Pool: injected Domain.spawn failure"
  end;
  Domain.spawn (worker t slot)

let create ~jobs =
  let jobs = max 1 (min jobs 64) in
  let t =
    {
      lock = Mutex.create ();
      has_work = Condition.create ();
      job_done = Condition.create ();
      idle = Condition.create ();
      current = None;
      stopping = false;
      workers = [];
      dead_slots = [];
      slot_counter = 0;
      n_domains = jobs;
    }
  in
  (* Domain.spawn can fail (per-process domain limit, resource
     exhaustion).  Keep whatever workers we actually got — worst case a
     1-domain pool that runs everything inline — instead of raising and
     taking the analysis down with us. *)
  let spawned = ref [] in
  for _ = 2 to jobs do
    t.slot_counter <- t.slot_counter + 1;
    match spawn_worker t t.slot_counter with
    | d -> spawned := (t.slot_counter, d) :: !spawned
    | exception _ -> ()
  done;
  t.workers <- !spawned;
  t.n_domains <- 1 + List.length !spawned;
  t

let dead_workers t =
  Mutex.lock t.lock;
  let n = List.length t.dead_slots in
  Mutex.unlock t.lock;
  n

(* Joins workers that died mid-run (a body raised {!Worker_abort}) and
   spawns replacements.  Must not race an in-flight job, like
   [shutdown].  A replacement spawn can itself fail (the injected
   [fail_spawns] path, or real resource exhaustion), in which case the
   pool stays smaller — the supervisor's degradation ladder. *)
let heal t =
  Mutex.lock t.lock;
  let dead = t.dead_slots in
  t.dead_slots <- [];
  let dead_ws, alive =
    List.partition (fun (slot, _) -> List.mem slot dead) t.workers
  in
  t.workers <- alive;
  Mutex.unlock t.lock;
  List.iter (fun (_, d) -> Domain.join d) dead_ws;
  let respawned = ref 0 in
  List.iter
    (fun _ ->
      Mutex.lock t.lock;
      t.slot_counter <- t.slot_counter + 1;
      let slot = t.slot_counter in
      Mutex.unlock t.lock;
      match spawn_worker t slot with
      | d ->
          Mutex.lock t.lock;
          t.workers <- (slot, d) :: t.workers;
          t.n_domains <- t.n_domains + 1;
          Mutex.unlock t.lock;
          incr respawned
      | exception _ -> ())
    dead_ws;
  !respawned

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter (fun (_, d) -> Domain.join d) workers

let default_jobs () =
  match Sys.getenv_opt "RTLB_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let with_pool ?jobs f =
  let t = create ~jobs:(match jobs with Some j -> j | None -> default_jobs ()) in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

exception Budget_exhausted

let run_inline ?deadline_ns ?(cancellable = true)
    ?(tracer = Rtlb_obs.Tracer.null) total body =
  let partial = ref false in
  let ran = ref 0 in
  let record () =
    if Rtlb_obs.Tracer.enabled tracer && total > 0 then
      Rtlb_obs.Tracer.record_chunk tracer ~items:!ran
  in
  (try
     for i = 0 to total - 1 do
       if expired ~cancellable deadline_ns then begin
         partial := true;
         Rtlb_obs.Tracer.add tracer Rtlb_obs.Tracer.Deadline_cancels 1;
         raise Budget_exhausted
       end;
       (match !For_testing.inject with Some f -> f i | None -> ());
       body i;
       incr ran
     done
   with
  | Budget_exhausted when !partial -> ()
  | e ->
      record ();
      raise e);
  record ();
  if !partial then `Partial else `Done

(* The submitter helps execute its own job; while it does, it counts as
   inside the pool so nested submits run inline. *)
let help t =
  Domain.DLS.set inside_pool true;
  Mutex.lock t.lock;
  let rec go () =
    match claim t with
    | Some (job, lo, hi) ->
        Mutex.unlock t.lock;
        (* The submitter never dies on [Worker_abort]: only spawned
           worker domains honour the fatal flag. *)
        ignore (exec_chunk t job lo hi : bool);
        Mutex.lock t.lock;
        go ()
    | None -> Mutex.unlock t.lock
  in
  go ();
  Domain.DLS.set inside_pool false

let run ?deadline_ns ?(cancellable = true) ?(tracer = Rtlb_obs.Tracer.null) t
    ~total body =
  if total <= 0 then `Done
  else if t.n_domains <= 1 || Domain.DLS.get inside_pool then
    run_inline ?deadline_ns ~cancellable ~tracer total body
  else begin
    (* ~4 chunks per domain balances stragglers against contention on
       the claim counter.  Chunks of 8+ items round up to a multiple of
       8 so that boundaries land on cache-line-sized slices of packed
       (8-byte int) arrays and adjacent workers never straddle a line
       mid-interval. *)
    let chunk = max 1 (1 + ((total - 1) / (4 * t.n_domains))) in
    let chunk = if chunk >= 8 then (chunk + 7) land lnot 7 else chunk in
    let job =
      {
        next = 0;
        total;
        chunk;
        body;
        deadline_ns;
        cancellable;
        completed = 0;
        skipped = 0;
        failed = None;
        suppressed = 0;
        tracer;
      }
    in
    Mutex.lock t.lock;
    while t.current <> None do
      Condition.wait t.idle t.lock
    done;
    t.current <- Some job;
    Condition.broadcast t.has_work;
    Mutex.unlock t.lock;
    help t;
    Mutex.lock t.lock;
    while job.completed < job.total do
      Condition.wait t.job_done t.lock
    done;
    let skipped = job.skipped in
    let suppressed = job.suppressed in
    Mutex.unlock t.lock;
    match job.failed with
    | Some (e, _) when suppressed > 0 -> raise (Worker_failures (e, suppressed))
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> if skipped > 0 then `Partial else `Done
  end

let map_array ?pool f input =
  let n = Array.length input in
  match pool with
  | None -> Array.map f input
  | Some t when t.n_domains <= 1 -> Array.map f input
  | Some t ->
      if n = 0 then [||]
      else begin
        let out = Array.make n None in
        (match
           run ~cancellable:false t ~total:n (fun i ->
               out.(i) <- Some (f input.(i)))
         with
        | `Done -> ()
        | `Partial -> assert false (* no deadline, nothing can be skipped *));
        Array.map
          (function Some v -> v | None -> assert false (* every index ran *))
          out
      end

let map_array_partial ?pool ?deadline_ns ?cancellable ?tracer f input =
  let n = Array.length input in
  let out = Array.make n None in
  let body i = out.(i) <- Some (f input.(i)) in
  let status =
    match pool with
    | Some t -> run ?deadline_ns ?cancellable ?tracer t ~total:n body
    | None -> run_inline ?deadline_ns ?cancellable ?tracer n body
  in
  (out, status)

let map_list ?pool f l =
  match pool with
  | None -> List.map f l
  | Some t when t.n_domains <= 1 -> List.map f l
  | Some _ -> Array.to_list (map_array ?pool f (Array.of_list l))
