(* Hand-rolled domain pool: a fixed worker set blocked on a condition
   variable, a chunked index queue per job, and index-keyed result slots
   so reductions are deterministic.  Only one job is active at a time;
   concurrent submitters queue on [idle].

   Invariant: [current = Some job] implies [job.next < job.total] — the
   claimer that takes the last chunk (or drains a failed job) clears
   [current] and wakes the next submitter, while the job itself is only
   finished once [completed = total] (its last executing chunk wakes the
   submitter through [job_done]). *)

type job = {
  mutable next : int;  (* next unclaimed index *)
  total : int;
  chunk : int;
  body : int -> unit;
  mutable completed : int;  (* indices executed or skipped *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

type t = {
  lock : Mutex.t;
  has_work : Condition.t;  (* workers: a job arrived / shutting down *)
  job_done : Condition.t;  (* submitter: my job completed *)
  idle : Condition.t;  (* submitters: the single job slot freed *)
  mutable current : job option;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
}

(* True on worker domains, and on a submitter while it executes job
   bodies: a submit from such a context would deadlock waiting for
   workers already busy underneath it, so it runs inline instead. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let size t = t.n_domains

(* Must hold [t.lock].  Claims the next chunk of the current job, or
   drains it after a failure; clears [current] (and wakes a queued
   submitter) once the last chunk is claimed. *)
let claim t =
  match t.current with
  | None -> None
  | Some job ->
      if job.failed <> None then begin
        (* Skip the unclaimed remainder; count it as completed so the
           submitter's wait terminates. *)
        let skipped = job.total - job.next in
        job.next <- job.total;
        job.completed <- job.completed + skipped;
        t.current <- None;
        Condition.broadcast t.idle;
        if job.completed >= job.total then Condition.broadcast t.job_done;
        None
      end
      else begin
        let lo = job.next in
        let hi = min job.total (lo + job.chunk) in
        job.next <- hi;
        if hi >= job.total then begin
          t.current <- None;
          Condition.broadcast t.idle
        end;
        Some (job, lo, hi)
      end

(* Runs indices [lo, hi) with the lock released, recording the first
   exception and the completion count. *)
let exec_chunk t job lo hi =
  (try
     for i = lo to hi - 1 do
       job.body i
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.lock;
     if job.failed = None then job.failed <- Some (e, bt);
     Mutex.unlock t.lock);
  Mutex.lock t.lock;
  job.completed <- job.completed + (hi - lo);
  if job.completed >= job.total then Condition.broadcast t.job_done;
  Mutex.unlock t.lock

let rec worker_step t =
  (* lock held on entry; released while executing *)
  match claim t with
  | Some (job, lo, hi) ->
      Mutex.unlock t.lock;
      exec_chunk t job lo hi;
      Mutex.lock t.lock;
      worker_step t
  | None ->
      if t.stopping then Mutex.unlock t.lock
      else begin
        Condition.wait t.has_work t.lock;
        worker_step t
      end

let worker t () =
  Domain.DLS.set inside_pool true;
  Mutex.lock t.lock;
  worker_step t

let create ~jobs =
  let jobs = max 1 (min jobs 64) in
  let t =
    {
      lock = Mutex.create ();
      has_work = Condition.create ();
      job_done = Condition.create ();
      idle = Condition.create ();
      current = None;
      stopping = false;
      workers = [];
      n_domains = jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.lock;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let default_jobs () =
  match Sys.getenv_opt "RTLB_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let with_pool ?jobs f =
  let t = create ~jobs:(match jobs with Some j -> j | None -> default_jobs ()) in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_inline total body =
  for i = 0 to total - 1 do
    body i
  done

(* The submitter helps execute its own job; while it does, it counts as
   inside the pool so nested submits run inline. *)
let help t =
  Domain.DLS.set inside_pool true;
  Mutex.lock t.lock;
  let rec go () =
    match claim t with
    | Some (job, lo, hi) ->
        Mutex.unlock t.lock;
        exec_chunk t job lo hi;
        Mutex.lock t.lock;
        go ()
    | None -> Mutex.unlock t.lock
  in
  go ();
  Domain.DLS.set inside_pool false

let run t ~total body =
  if total > 0 then
    if t.n_domains <= 1 || Domain.DLS.get inside_pool then run_inline total body
    else begin
      (* ~4 chunks per domain balances stragglers against contention on
         the claim counter. *)
      let chunk = max 1 (1 + ((total - 1) / (4 * t.n_domains))) in
      let job = { next = 0; total; chunk; body; completed = 0; failed = None } in
      Mutex.lock t.lock;
      while t.current <> None do
        Condition.wait t.idle t.lock
      done;
      t.current <- Some job;
      Condition.broadcast t.has_work;
      Mutex.unlock t.lock;
      help t;
      Mutex.lock t.lock;
      while job.completed < job.total do
        Condition.wait t.job_done t.lock
      done;
      Mutex.unlock t.lock;
      match job.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_array ?pool f input =
  let n = Array.length input in
  match pool with
  | None -> Array.map f input
  | Some t when t.n_domains <= 1 -> Array.map f input
  | Some t ->
      if n = 0 then [||]
      else begin
        let out = Array.make n None in
        run t ~total:n (fun i -> out.(i) <- Some (f input.(i)));
        Array.map
          (function Some v -> v | None -> assert false (* every index ran *))
          out
      end

let map_list ?pool f l =
  match pool with
  | None -> List.map f l
  | Some t when t.n_domains <= 1 -> List.map f l
  | Some _ -> Array.to_list (map_array ?pool f (Array.of_list l))
