(* Deterministic chaos harness.  A plan is a finite list of faults with
   bounded fire counts, injected through the Pool.For_testing hooks, so
   an armed process always quiesces: every fault fires at most its
   budget and the supervisor's retry/heal machinery converges.  All
   state is atomics — the inject hook runs on worker domains. *)

exception Transient of int
exception Killed

let () =
  Printexc.register_printer (function
    | Transient i -> Some (Printf.sprintf "Chaos.Transient(%d)" i)
    | Killed -> Some "Chaos.Killed (simulated kill at checkpoint)"
    | _ -> None)

type fault =
  | Spawn_fail of int
  | Raise_at of { index : int; times : int }
  | Kill_worker_at of { index : int }
  | Slow_at of { index : int; spins : int }
  | Kill_at_checkpoint of int
  | Bad_frame_at of { index : int }
  | Kill_request_at of { index : int }
  | Slow_client_at of { index : int; ms : int }
  | Tenant_flood_at of { index : int; burst : int }
  | Kill_server_at of { index : int }
  | Journal_corrupt_at of { index : int }

type plan = { seed : int; faults : fault list }

(* ---- armed state -------------------------------------------------- *)

let armed_plan : plan option ref = ref None
let ckpt_countdown = Atomic.make (-1) (* -1: no kill-at-checkpoint armed *)
let n_transient = Atomic.make 0
let n_worker_kills = Atomic.make 0
let n_slow = Atomic.make 0
let n_bad_frames = Atomic.make 0
let n_request_kills = Atomic.make 0
let n_client_delays = Atomic.make 0
let n_tenant_floods = Atomic.make 0
let n_server_kills = Atomic.make 0
let n_journal_corrupts = Atomic.make 0

(* Server-side directives are keyed by request (or frame) sequence
   number, not pool work-item index; the serve layer and chaos-aware
   test clients consult them through the hooks below.  Budgets are
   atomics so concurrent client threads and server workers can race on
   the same armed plan. *)
let bad_frames : (int * int Atomic.t) list ref = ref []
let request_kills : (int * int Atomic.t) list ref = ref []
let client_delays : (int * int * int Atomic.t) list ref = ref []
let tenant_floods : (int * int * int Atomic.t) list ref = ref []
let server_kills : (int * int Atomic.t) list ref = ref []
let journal_corrupts : (int * int Atomic.t) list ref = ref []

(* Claim one shot from a bounded budget; false once exhausted. *)
let take budget =
  let rec go () =
    let v = Atomic.get budget in
    if v <= 0 then false
    else if Atomic.compare_and_set budget v (v - 1) then true
    else go ()
  in
  go ()

let disarm () =
  armed_plan := None;
  Atomic.set ckpt_countdown (-1);
  Atomic.set n_transient 0;
  Atomic.set n_worker_kills 0;
  Atomic.set n_slow 0;
  Atomic.set n_bad_frames 0;
  Atomic.set n_request_kills 0;
  Atomic.set n_client_delays 0;
  Atomic.set n_tenant_floods 0;
  Atomic.set n_server_kills 0;
  Atomic.set n_journal_corrupts 0;
  bad_frames := [];
  request_kills := [];
  client_delays := [];
  tenant_floods := [];
  server_kills := [];
  journal_corrupts := [];
  Pool.For_testing.reset ()

let arm plan =
  disarm ();
  armed_plan := Some plan;
  let triggers =
    List.filter_map
      (function
        | Spawn_fail n ->
            Pool.For_testing.fail_spawns := !Pool.For_testing.fail_spawns + n;
            None
        | Kill_at_checkpoint n ->
            Atomic.set ckpt_countdown n;
            None
        | Bad_frame_at { index } ->
            bad_frames := (index, Atomic.make 1) :: !bad_frames;
            None
        | Kill_request_at { index } ->
            request_kills := (index, Atomic.make 1) :: !request_kills;
            None
        | Slow_client_at { index; ms } ->
            client_delays := (index, ms, Atomic.make 1) :: !client_delays;
            None
        | Tenant_flood_at { index; burst } ->
            tenant_floods := (index, burst, Atomic.make 1) :: !tenant_floods;
            None
        | Kill_server_at { index } ->
            server_kills := (index, Atomic.make 1) :: !server_kills;
            None
        | Journal_corrupt_at { index } ->
            journal_corrupts := (index, Atomic.make 1) :: !journal_corrupts;
            None
        | Raise_at { index; times } ->
            let budget = Atomic.make times in
            Some
              (fun i ->
                if i = index && take budget then begin
                  Atomic.incr n_transient;
                  raise (Transient i)
                end)
        | Kill_worker_at { index } ->
            let budget = Atomic.make 1 in
            Some
              (fun i ->
                if i = index && take budget then begin
                  Atomic.incr n_worker_kills;
                  raise Pool.Worker_abort
                end)
        | Slow_at { index; spins } ->
            Some
              (fun i ->
                if i = index then begin
                  Atomic.incr n_slow;
                  for _ = 1 to spins do
                    Domain.cpu_relax ()
                  done
                end))
      plan.faults
  in
  if triggers <> [] then
    Pool.For_testing.inject := Some (fun i -> List.iter (fun f -> f i) triggers)

let armed () = !armed_plan
let fired_transient () = Atomic.get n_transient
let fired_worker_kills () = Atomic.get n_worker_kills
let fired_slow () = Atomic.get n_slow
let fired_bad_frames () = Atomic.get n_bad_frames
let fired_request_kills () = Atomic.get n_request_kills
let fired_client_delays () = Atomic.get n_client_delays
let fired_tenant_floods () = Atomic.get n_tenant_floods
let fired_server_kills () = Atomic.get n_server_kills
let fired_journal_corrupts () = Atomic.get n_journal_corrupts

(* ---- server-side hooks -------------------------------------------- *)

let frame_corrupt index =
  match List.find_opt (fun (i, _) -> i = index) !bad_frames with
  | Some (_, budget) when take budget ->
      Atomic.incr n_bad_frames;
      true
  | _ -> false

let client_delay_ms index =
  match List.find_opt (fun (i, _, _) -> i = index) !client_delays with
  | Some (_, ms, budget) when take budget ->
      Atomic.incr n_client_delays;
      ms
  | _ -> 0

let tenant_flood_burst index =
  match List.find_opt (fun (i, _, _) -> i = index) !tenant_floods with
  | Some (_, burst, budget) when take budget ->
      Atomic.incr n_tenant_floods;
      burst
  | _ -> 0

let on_request index =
  match List.find_opt (fun (i, _) -> i = index) !request_kills with
  | Some (_, budget) when take budget ->
      Atomic.incr n_request_kills;
      raise Pool.Worker_abort
  | _ -> ()

let server_kill index =
  match List.find_opt (fun (i, _) -> i = index) !server_kills with
  | Some (_, budget) when take budget ->
      Atomic.incr n_server_kills;
      true
  | _ -> false

let journal_corrupt index =
  match List.find_opt (fun (i, _) -> i = index) !journal_corrupts with
  | Some (_, budget) when take budget ->
      Atomic.incr n_journal_corrupts;
      true
  | _ -> false

let on_checkpoint () =
  let rec go () =
    let v = Atomic.get ckpt_countdown in
    if v < 0 then ()
    else if Atomic.compare_and_set ckpt_countdown v (v - 1) then begin
      if v = 1 then raise Killed
    end
    else go ()
  in
  go ()

(* ---- seeded plans ------------------------------------------------- *)

(* splitmix64, the usual seed expander: decorrelates consecutive seeds
   so plan 1 and plan 2 differ in shape, not just indices. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let plan_of_seed seed =
  let state = ref (Int64.of_int (succ (abs seed))) in
  let rand bound = Int64.to_int (Int64.rem (Int64.logand (splitmix state) Int64.max_int) (Int64.of_int bound)) in
  let n_faults = 1 + rand 3 in
  let faults =
    List.init n_faults (fun _ ->
        match rand 5 with
        | 0 -> Spawn_fail (1 + rand 2)
        | 1 -> Raise_at { index = rand 32; times = 1 + rand 2 }
        | 2 -> Kill_worker_at { index = rand 32 }
        | 3 -> Slow_at { index = rand 32; spins = 1000 * (1 + rand 8) }
        | _ -> Raise_at { index = rand 8; times = 1 })
  in
  { seed; faults }

let server_plan_of_seed ?(requests = 32) seed =
  let state = ref (Int64.of_int (succ (abs seed))) in
  let rand bound = Int64.to_int (Int64.rem (Int64.logand (splitmix state) Int64.max_int) (Int64.of_int bound)) in
  let requests = max 1 requests in
  let n_faults = 2 + rand 4 in
  let faults =
    List.init n_faults (fun _ ->
        match rand 4 with
        | 0 -> Bad_frame_at { index = rand requests }
        | 1 -> Kill_request_at { index = rand requests }
        | 2 -> Slow_client_at { index = rand requests; ms = 1 + rand 20 }
        | _ -> Raise_at { index = 0; times = 1 + rand 2 })
  in
  { seed; faults }

(* ---- RTLB_CHAOS syntax -------------------------------------------- *)

let fault_to_string = function
  | Spawn_fail n -> Printf.sprintf "spawnfail=%d" n
  | Raise_at { index; times } when times = 1 -> Printf.sprintf "raise@%d" index
  | Raise_at { index; times } -> Printf.sprintf "raise@%dx%d" index times
  | Kill_worker_at { index } -> Printf.sprintf "kill@%d" index
  | Slow_at { index; spins } -> Printf.sprintf "slow@%d:%d" index spins
  | Kill_at_checkpoint n -> Printf.sprintf "killckpt@%d" n
  | Bad_frame_at { index } -> Printf.sprintf "badframe@%d" index
  | Kill_request_at { index } -> Printf.sprintf "killreq@%d" index
  | Slow_client_at { index; ms } -> Printf.sprintf "slowclient@%d:%d" index ms
  | Tenant_flood_at { index; burst } ->
      Printf.sprintf "tenantflood@%d:%d" index burst
  | Kill_server_at { index } -> Printf.sprintf "killserver@%d" index
  | Journal_corrupt_at { index } -> Printf.sprintf "journalcorrupt@%d" index

let to_string plan =
  match plan.faults with
  | [] -> Printf.sprintf "seed=%d" plan.seed
  | faults -> String.concat "," (List.map fault_to_string faults)

let parse s =
  (* Strictly decimal: [int_of_string_opt] alone also accepts OCaml
     literal forms (0x.., 0b.., 0o.., '_' separators, a leading '+'),
     which silently reinterpreted typos — [kill@0x3] armed [kill@3].
     Every payload must be plain digits; anything else is rejected with
     an error naming the whole offending token. *)
  let parse_int ~tok what v =
    let decimal = v <> "" && String.for_all (fun c -> c >= '0' && c <= '9') v in
    match if decimal then int_of_string_opt v else None with
    | Some n when n >= 0 -> Ok n
    | _ ->
        Error
          (Printf.sprintf
             "in token %S: %s expects a non-negative decimal integer, got %S"
             tok what v)
  in
  let parse_token tok =
    let parse_int what v = parse_int ~tok what v in
    match String.index_opt tok '=' with
    | Some i -> (
        let k = String.sub tok 0 i
        and v = String.sub tok (i + 1) (String.length tok - i - 1) in
        match k with
        | "seed" ->
            Result.map (fun n -> `Seed n) (parse_int "seed" v)
        | "spawnfail" ->
            Result.map (fun n -> `Fault (Spawn_fail n)) (parse_int "spawnfail" v)
        | _ -> Error (Printf.sprintf "unknown chaos token %S" tok))
    | None -> (
        match String.index_opt tok '@' with
        | None -> Error (Printf.sprintf "unknown chaos token %S" tok)
        | Some i -> (
            let k = String.sub tok 0 i
            and v = String.sub tok (i + 1) (String.length tok - i - 1) in
            match k with
            | "raise" -> (
                match String.index_opt v 'x' with
                | None ->
                    Result.map
                      (fun index -> `Fault (Raise_at { index; times = 1 }))
                      (parse_int "raise" v)
                | Some j ->
                    let idx = String.sub v 0 j
                    and times = String.sub v (j + 1) (String.length v - j - 1) in
                    Result.bind (parse_int "raise" idx) (fun index ->
                        Result.map
                          (fun times -> `Fault (Raise_at { index; times }))
                          (parse_int "raise times" times)))
            | "kill" ->
                Result.map
                  (fun index -> `Fault (Kill_worker_at { index }))
                  (parse_int "kill" v)
            | "slow" -> (
                match String.index_opt v ':' with
                | None ->
                    Result.map
                      (fun index -> `Fault (Slow_at { index; spins = 10_000 }))
                      (parse_int "slow" v)
                | Some j ->
                    let idx = String.sub v 0 j
                    and spins = String.sub v (j + 1) (String.length v - j - 1) in
                    Result.bind (parse_int "slow" idx) (fun index ->
                        Result.map
                          (fun spins -> `Fault (Slow_at { index; spins }))
                          (parse_int "slow spins" spins)))
            | "killckpt" ->
                Result.map
                  (fun n -> `Fault (Kill_at_checkpoint n))
                  (parse_int "killckpt" v)
            | "badframe" ->
                Result.map
                  (fun index -> `Fault (Bad_frame_at { index }))
                  (parse_int "badframe" v)
            | "killreq" ->
                Result.map
                  (fun index -> `Fault (Kill_request_at { index }))
                  (parse_int "killreq" v)
            | "slowclient" -> (
                match String.index_opt v ':' with
                | None ->
                    Result.map
                      (fun index -> `Fault (Slow_client_at { index; ms = 25 }))
                      (parse_int "slowclient" v)
                | Some j ->
                    let idx = String.sub v 0 j
                    and ms = String.sub v (j + 1) (String.length v - j - 1) in
                    Result.bind (parse_int "slowclient" idx) (fun index ->
                        Result.map
                          (fun ms -> `Fault (Slow_client_at { index; ms }))
                          (parse_int "slowclient ms" ms)))
            | "tenantflood" -> (
                match String.index_opt v ':' with
                | None ->
                    Result.map
                      (fun index -> `Fault (Tenant_flood_at { index; burst = 8 }))
                      (parse_int "tenantflood" v)
                | Some j ->
                    let idx = String.sub v 0 j
                    and burst = String.sub v (j + 1) (String.length v - j - 1) in
                    Result.bind (parse_int "tenantflood" idx) (fun index ->
                        Result.map
                          (fun burst -> `Fault (Tenant_flood_at { index; burst }))
                          (parse_int "tenantflood burst" burst)))
            | "killserver" ->
                Result.map
                  (fun index -> `Fault (Kill_server_at { index }))
                  (parse_int "killserver" v)
            | "journalcorrupt" ->
                Result.map
                  (fun index -> `Fault (Journal_corrupt_at { index }))
                  (parse_int "journalcorrupt" v)
            | _ -> Error (Printf.sprintf "unknown chaos token %S" tok)))
  in
  let tokens =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  if tokens = [] then Error "empty chaos plan"
  else
    List.fold_left
      (fun acc tok ->
        Result.bind acc (fun (seed, faults) ->
            Result.map
              (function
                | `Seed n -> (Some n, faults)
                | `Fault f -> (seed, f :: faults))
              (parse_token tok)))
      (Ok (None, []))
      tokens
    |> Result.map (fun (seed, faults) ->
           match (seed, faults) with
           | Some n, [] -> plan_of_seed n
           | Some n, faults -> { seed = n; faults = List.rev faults }
           | None, faults -> { seed = 0; faults = List.rev faults })

let arm_from_env () =
  match Sys.getenv_opt "RTLB_CHAOS" with
  | None | Some "" -> Ok false
  | Some s -> (
      match parse s with
      | Ok plan ->
          arm plan;
          Ok true
      | Error e -> Error (Printf.sprintf "RTLB_CHAOS: %s" e))
