(** A fixed-size domain pool with a chunked work queue and deterministic
    reduction, built on nothing but the stdlib ([Domain], [Mutex],
    [Condition]).

    The pool exists to parallelise the embarrassingly-parallel fan-outs of
    the analysis (per-resource, per-block bound scans; per-factor
    sensitivity sweeps) while keeping the output {e bit-identical} to the
    sequential path: work items are indexed, each worker claims chunks of
    indices from a shared counter, results land in an array slot keyed by
    index, and the caller reduces that array in index order.  Scheduling
    nondeterminism can therefore never reorder a reduction.

    Concurrency contract:

    - [map_array]/[map_list]/[run] may be called from several domains at
      once; jobs are serialised through the pool one at a time.
    - A work-item body that itself calls back into the pool (a {e nested}
      submit) is detected and run inline on the calling domain, so nesting
      can never deadlock — it just loses its extra parallelism.
    - The first exception raised by a body is captured with its backtrace
      and re-raised in the submitter once the job has drained; remaining
      unclaimed chunks of the failed job are skipped.  The pool stays
      usable afterwards.
    - [shutdown] must not race with an in-flight job (structure calls with
      {!with_pool} and this cannot happen). *)

type t

val create : jobs:int -> t
(** A pool that executes jobs on [jobs] domains in total: the submitting
    domain plus [jobs - 1] spawned workers (clamped to [1 .. 64]).
    [create ~jobs:1] spawns nothing and runs everything inline. *)

val size : t -> int
(** Total parallelism, spawned workers plus the submitter. *)

val shutdown : t -> unit
(** Stops and joins the worker domains.  Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception).  [jobs] defaults to
    {!default_jobs}[ ()]. *)

val default_jobs : unit -> int
(** The [RTLB_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val run : t -> total:int -> (int -> unit) -> unit
(** [run pool ~total body] executes [body 0 .. body (total - 1)], in
    chunks, across the pool (the submitter participates).  Returns when
    every index has run; re-raises the first exception a body raised. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; the result is in input order regardless of
    execution order.  Without [?pool] (or on a 1-domain pool) this is
    exactly [Array.map]. *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], same ordering guarantee. *)
