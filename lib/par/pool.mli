(** A fixed-size domain pool with a chunked work queue and deterministic
    reduction, built on nothing but the stdlib ([Domain], [Mutex],
    [Condition]) plus the [Rtlb_obs.Clock] monotonic clock for time
    budgets.

    The pool exists to parallelise the embarrassingly-parallel fan-outs of
    the analysis (per-resource, per-block bound scans; per-factor
    sensitivity sweeps) while keeping the output {e bit-identical} to the
    sequential path: work items are indexed, each worker claims chunks of
    indices from a shared counter, results land in an array slot keyed by
    index, and the caller reduces that array in index order.  Scheduling
    nondeterminism can therefore never reorder a reduction.

    Concurrency contract:

    - [map_array]/[map_list]/[run] may be called from several domains at
      once; jobs are serialised through the pool one at a time.
    - A work-item body that itself calls back into the pool (a {e nested}
      submit) is detected and run inline on the calling domain, so nesting
      can never deadlock — it just loses its extra parallelism.
    - The first exception raised by a body is captured with its backtrace
      and re-raised in the submitter once the job has drained; remaining
      unclaimed chunks of the failed job are skipped.  The pool stays
      usable afterwards.
    - Cooperative cancellation: a job submitted with [?deadline_ns] stops
      claiming work once the deadline passes.  The check happens at chunk
      claims only, so in-flight chunks always complete and the executed
      indices form a prefix of the claim order; the submitter is told the
      job was [`Partial].
    - [shutdown] must not race with an in-flight job (structure calls with
      {!with_pool} and this cannot happen). *)

type t

exception Worker_abort
(** A work-item body raising this is treated as a {e worker death}: the
    failure is recorded like any other (the job fails, the submitter
    sees the exception), but the executing worker domain also exits.
    {!dead_workers} counts the casualties and {!heal} respawns them.
    The chaos harness raises it to simulate an OOM-killed or crashed
    worker; the submitting domain itself never honours it (a dead
    submitter is a dead process). *)

exception Worker_failures of exn * int
(** [Worker_failures (first, suppressed)]: more than one worker body
    raised during a single job.  The first exception is kept intact;
    [suppressed] counts the later ones (each also recorded in the
    [Worker_errors] tracer counter), so concurrent failures are never
    silently dropped.  A single-failure job re-raises the original
    exception unwrapped, preserving existing matching. *)

val create : jobs:int -> t
(** A pool that executes jobs on at most [jobs] domains in total: the
    submitting domain plus up to [jobs - 1] spawned workers (clamped to
    [1 .. 64]).  [create ~jobs:1] spawns nothing and runs everything
    inline.  A [Domain.spawn] failure (domain limit, resource
    exhaustion) is not fatal: the pool degrades to the workers it
    actually got — in the worst case a sequential 1-domain pool — and
    {!size} reports the achieved parallelism. *)

val size : t -> int
(** Total parallelism actually available: successfully spawned workers
    plus the submitter.  May be less than the [jobs] passed to {!create}
    when worker spawning failed. *)

val shutdown : t -> unit
(** Stops and joins the worker domains.  Idempotent. *)

val dead_workers : t -> int
(** Worker domains that died mid-run (a body raised {!Worker_abort})
    and have not been healed yet. *)

val heal : t -> int
(** Joins every dead worker and spawns a replacement for each, returning
    how many were actually respawned.  A replacement spawn can itself
    fail (resource exhaustion, or the injected [fail_spawns] path), in
    which case the pool simply stays smaller — {!size} reports the
    achieved parallelism.  Like {!shutdown}, must not race an in-flight
    job. *)

val request_cancel : unit -> unit
(** Sets the process-wide cooperative cancel flag: every {e cancellable}
    job (see [?cancellable] below) stops claiming work at its next
    check, exactly as if its deadline had expired, and reports
    [`Partial].  Async-signal-safe — this is the CLI's SIGINT/SIGTERM
    hook. *)

val cancel_requested : unit -> bool

val reset_cancel : unit -> unit
(** Clears the flag (tests; a process that handles the signal and keeps
    living). *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception).  [jobs] defaults to
    {!default_jobs}[ ()]. *)

val default_jobs : unit -> int
(** The [RTLB_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds ({!Rtlb_obs.Clock.monotonic}), the time base
    of every [?deadline_ns] below: pass
    [Int64.add (now_ns ()) budget_ns].  Monotonic, not wall-clock, so
    an NTP step can neither fire nor starve a budget. *)

val run :
  ?deadline_ns:int64 ->
  ?cancellable:bool ->
  ?tracer:Rtlb_obs.Tracer.t ->
  t -> total:int -> (int -> unit) -> [ `Done | `Partial ]
(** [run pool ~total body] executes [body 0 .. body (total - 1)], in
    chunks, across the pool (the submitter participates).  Chunk sizes
    of 8 and above are rounded up to a multiple of 8, so boundaries
    fall on 64-byte cache-line edges of packed 8-byte-int array slices
    and neighbouring workers never share a line.  Returns when
    every index has run or been abandoned; re-raises the first exception
    a body raised (wrapped in {!Worker_failures} when later bodies also
    raised).  [`Partial] means the deadline expired — or, for a
    [?cancellable] job (the default), {!request_cancel} was called —
    and at least one index was skipped.

    With [?tracer], every executed chunk is recorded as a per-worker
    ["chunk"] span and credited to the executing domain in the tracer's
    worker table ([Chunks_claimed] counter, items = bodies that ran to
    completion); a deadline expiry bumps [Deadline_cancels] once.
    Tracing never changes scheduling or results. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; the result is in input order regardless of
    execution order.  Without [?pool] (or on a 1-domain pool) this is
    exactly [Array.map]. *)

val map_array_partial :
  ?pool:t ->
  ?deadline_ns:int64 ->
  ?cancellable:bool ->
  ?tracer:Rtlb_obs.Tracer.t ->
  ('a -> 'b) ->
  'a array ->
  'b option array * [ `Done | `Partial ]
(** Budgeted parallel map: slots whose work item was abandoned at the
    deadline (or at a {!request_cancel}, unless [~cancellable:false])
    hold [None].  With [`Done] every slot is [Some].  Executed
    slots hold exactly what {!map_array} would have computed.
    [?tracer] instruments the run as in {!run} (the inline path counts
    as one chunk on the calling domain). *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], same ordering guarantee as {!map_array}. *)

(** Test-only fault injection.  Not for production use: the hooks are
    global, unsynchronised refs that tests set before creating a pool or
    submitting a job and clear with [reset] afterwards. *)
module For_testing : sig
  val inject : (int -> unit) option ref
  (** Called with the work-item index before every body execution, on
      worker domains and the inline path alike; may raise (exception
      propagation paths) or sleep (budget-expiry paths). *)

  val fail_spawns : int ref
  (** The next [n] [Domain.spawn] attempts inside {!create} fail,
      exercising the shrink-on-spawn-failure path. *)

  val reset : unit -> unit
end
