(** Resilient execution on top of {!Pool}: per-item retry with bounded
    exponential backoff for transient failures, automatic worker
    respawn ({!Pool.heal}) when a domain dies mid-run, and a
    degradation ladder — full pool, reduced pool, sequential — so a
    supervised map {e always} produces a result, marking anything less
    than a clean full-parallel run as [`Degraded].

    Determinism: completed slots are never recomputed, and every slot
    is written by exactly one successful application of the work
    function, so a run that survives faults is bit-identical to a
    fault-free {!Pool.map_array} on the same input (the chaos property
    suite asserts exactly this). *)

type level =
  | Full  (** Finished at the parallelism the pool started with. *)
  | Reduced of int
      (** Worker deaths (or failed respawns) shrank the pool; the
          payload is the surviving {!Pool.size}. *)
  | Sequential
      (** The respawn budget ran out; the tail of the work ran inline
          on the submitting domain. *)

type status = [ `Complete | `Degraded | `Partial ]

type outcome = {
  o_status : status;
      (** [`Complete]: every slot computed at full parallelism with no
          drops.  [`Degraded]: every retry/heal path converged but the
          run was not clean — items were dropped after exhausting their
          retry budget and/or the ladder stepped down.  [`Partial]: the
          deadline expired or {!Pool.request_cancel} fired; unexecuted
          slots are [None]. *)
  o_level : level;
  o_retries : int;  (** Item re-executions after a recorded failure. *)
  o_restarts : int;  (** Worker domains respawned by {!Pool.heal}. *)
  o_dropped : int;  (** Items abandoned after [max_item_retries]. *)
  o_errors : (int * string) list;
      (** Dropped item index, last error message — index-sorted. *)
}

type policy = {
  max_item_retries : int;  (** Re-executions allowed per item. *)
  max_restarts : int;  (** Worker respawns before going sequential. *)
  backoff_ns : int64;  (** First sleep after a round with failures. *)
  backoff_multiplier : int;
  max_backoff_ns : int64;
  sleep_ns : int64 -> unit;
      (** Injectable for tests; the default busy-waits on the monotonic
          clock (lib/par has no unix dependency). *)
}

val default_policy : policy
(** 3 retries per item, 2 respawns, 1 ms backoff doubling to 16 ms. *)

val supervise :
  ?policy:policy ->
  ?pool:Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  ('a -> 'b) ->
  'a array ->
  'b option array * outcome
(** [supervise f input] maps [f] over [input] under supervision.  A
    slot is [None] only when its item was dropped ([`Degraded], listed
    in [o_errors]) or abandoned at the deadline ([`Partial]).

    [f] raising {!Pool.Worker_abort} kills the executing worker (healed
    and counted in [o_restarts]); any other exception is a transient:
    recorded, retried after backoff, and counted in [o_retries].  With
    [?tracer], retries, respawns and transient failures bump the
    [Retries], [Worker_restarts] and [Worker_errors] counters.

    Without [?pool] the map runs sequentially on the calling domain;
    that is not degradation ([o_level = Full]). *)

val coverage : int -> outcome -> float
(** [coverage n outcome]: fraction of [n] items not dropped — 1.0 for a
    clean run. *)
