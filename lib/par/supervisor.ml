(* Resilient execution on top of Pool: per-item retry with bounded
   exponential backoff, worker respawn after mid-run deaths, and a
   degradation ladder (full pool -> reduced pool -> sequential) that
   always terminates with a result.

   The supervisor wraps each work item so transient exceptions are
   caught and recorded per item instead of failing the whole job; only
   Pool.Worker_abort escapes to the pool (it must — that is what kills
   the worker domain).  Completed slots are never recomputed, so a
   retried run re-executes exactly the failed/abandoned items, and the
   final slot values are bit-identical to a fault-free map (each slot
   is written by exactly one successful [f input.(i)]). *)

type level = Full | Reduced of int | Sequential

type status = [ `Complete | `Degraded | `Partial ]

type outcome = {
  o_status : status;
  o_level : level;
  o_retries : int;
  o_restarts : int;
  o_dropped : int;
  o_errors : (int * string) list;
}

type policy = {
  max_item_retries : int;
  max_restarts : int;
  backoff_ns : int64;
  backoff_multiplier : int;
  max_backoff_ns : int64;
  sleep_ns : int64 -> unit;
}

(* lib/par deliberately has no unix dependency, so the default sleep is
   a monotonic-clock spin.  Backoffs are bounded at milliseconds; a
   caller with a real scheduler can inject a blocking sleep. *)
let busy_sleep ns =
  if Int64.compare ns 0L > 0 then begin
    let until = Int64.add (Pool.now_ns ()) ns in
    while Int64.compare (Pool.now_ns ()) until < 0 do
      Domain.cpu_relax ()
    done
  end

let default_policy =
  {
    max_item_retries = 3;
    max_restarts = 2;
    backoff_ns = 1_000_000L (* 1 ms *);
    backoff_multiplier = 2;
    max_backoff_ns = 16_000_000L (* 16 ms *);
    sleep_ns = busy_sleep;
  }

let expired_or_cancelled deadline_ns =
  Pool.cancel_requested ()
  ||
  match deadline_ns with
  | None -> false
  | Some d -> Int64.compare (Pool.now_ns ()) d >= 0

let supervise ?(policy = default_policy) ?pool ?deadline_ns
    ?(tracer = Rtlb_obs.Tracer.null) f input =
  let n = Array.length input in
  let results = Array.make n None in
  let attempts = Array.make n 0 in
  let last_error : string option array = Array.make n None in
  let dropped : string option array = Array.make n None in
  let lock = Mutex.create () in
  let round_errors = ref [] in (* (index, message) recorded this round *)
  let retries = ref 0 in
  let restarts = ref 0 in
  let partial = ref false in
  let sequential = ref false in
  let initial_size = match pool with Some p -> Pool.size p | None -> 1 in
  let carry = ref 0 in (* pool-recorded failures awaiting retry accounting *)
  let body items j =
    let i = items.(j) in
    match f input.(i) with
    | v -> results.(i) <- Some v
    | exception Pool.Worker_abort ->
        (* Pool-level by design: the abort must reach the pool to kill
           the worker domain; the pool records the failure and the
           [`Crashed] handling below accounts for the redo. *)
        raise Pool.Worker_abort
    | exception e ->
        let msg = Printexc.to_string e in
        Mutex.lock lock;
        attempts.(i) <- attempts.(i) + 1;
        last_error.(i) <- Some msg;
        round_errors := (i, msg) :: !round_errors;
        Mutex.unlock lock;
        Rtlb_obs.Tracer.add tracer Rtlb_obs.Tracer.Worker_errors 1
  in
  (* One pass over [items]: on the pool unless degraded to sequential.
     Exceptions raised by [f] are recorded per item by [body]; failures
     recorded at the pool layer itself — a worker abort, or a fault
     injected around the body (the chaos harness raises through
     [Pool.For_testing.inject], outside the per-item wrapper) — escape
     [Pool.run] and come back here as [`Crashed k] (first failure was
     {!Pool.Worker_abort}: a worker died) or [`Failed k] ([k] recorded
     failures with no item attribution).  Both feed [carry] so the redo
     of those failed executions is still counted as retries. *)
  let run_items items =
    match pool with
    | Some p when (not !sequential) && Pool.size p > 1 -> (
        match
          Pool.run ?deadline_ns ~cancellable:true ~tracer p
            ~total:(Array.length items) (body items)
        with
        | `Done -> `Done
        | `Partial -> `Partial
        | exception Pool.Worker_abort -> `Crashed 1
        | exception Pool.Worker_failures (Pool.Worker_abort, suppressed) ->
            `Crashed (1 + suppressed)
        | exception Pool.Worker_failures (_, suppressed) ->
            `Failed (1 + suppressed)
        | exception _ -> `Failed 1)
    | _ ->
        let len = Array.length items in
        let rec go j =
          if j >= len then `Done
          else if expired_or_cancelled deadline_ns then `Partial
          else begin
            (try body items j with Pool.Worker_abort -> ());
            go (j + 1)
          end
        in
        go 0
  in
  let pending () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if results.(i) = None && dropped.(i) = None then acc := i :: !acc
    done;
    !acc
  in
  let drop i why =
    dropped.(i) <- Some (Option.value last_error.(i) ~default:why)
  in
  let max_rounds = policy.max_item_retries + policy.max_restarts + 3 in
  let rec loop round backoff =
    match pending () with
    | [] -> ()
    | _ when !partial -> ()
    | _ when round > max_rounds ->
        List.iter (fun i -> drop i "supervisor: retry budget exhausted")
          (pending ())
    | pend ->
        (* Items re-run after a recorded failure are retries: those whose
           failure was attributed per item ([attempts]) plus the
           pool-recorded failures carried from the previous round.  Items
           merely drained by a crashed job are not (they never ran). *)
        if round > 0 then begin
          let retried =
            List.length (List.filter (fun i -> attempts.(i) > 0) pend)
            + !carry
          in
          carry := 0;
          retries := !retries + retried;
          Rtlb_obs.Tracer.add tracer Rtlb_obs.Tracer.Retries retried
        end;
        round_errors := [];
        let items = Array.of_list pend in
        let status = run_items items in
        (match status with
        | `Partial -> partial := true
        | `Crashed k | `Failed k -> carry := !carry + k
        | `Done -> ());
        (* Heal mid-run worker deaths; when the respawn budget is spent
           (or the pool is beyond saving) fall to the sequential rung. *)
        (match pool with
        | Some p when Pool.dead_workers p > 0 ->
            let healed = Pool.heal p in
            restarts := !restarts + healed;
            Rtlb_obs.Tracer.add tracer Rtlb_obs.Tracer.Worker_restarts healed;
            if !restarts > policy.max_restarts || Pool.size p <= 1 then
              sequential := true
        | Some _
          when (match status with `Crashed _ -> true | _ -> false)
               && !restarts >= policy.max_restarts ->
            sequential := true
        | _ -> ());
        (* Items out of retry budget are dropped, never retried forever. *)
        List.iter
          (fun i ->
            if
              results.(i) = None && dropped.(i) = None
              && attempts.(i) > policy.max_item_retries
            then drop i "supervisor: retry budget exhausted")
          pend;
        if not !partial then begin
          let transient_failure =
            !round_errors <> []
            || (match status with `Failed _ -> true | _ -> false)
          in
          if transient_failure then begin
            policy.sleep_ns backoff;
            let next =
              Int64.mul backoff (Int64.of_int policy.backoff_multiplier)
            in
            let next =
              if Int64.compare next policy.max_backoff_ns > 0 then
                policy.max_backoff_ns
              else next
            in
            loop (round + 1) next
          end
          else loop (round + 1) backoff
        end
  in
  loop 0 policy.backoff_ns;
  let o_errors = ref [] in
  let o_dropped = ref 0 in
  for i = n - 1 downto 0 do
    match dropped.(i) with
    | Some msg ->
        incr o_dropped;
        o_errors := (i, msg) :: !o_errors
    | None -> ()
  done;
  let final_size = match pool with Some p -> Pool.size p | None -> 1 in
  let o_level =
    if !sequential then Sequential
    else if final_size < initial_size then Reduced final_size
    else Full
  in
  let o_status =
    if !partial then `Partial
    else if !o_dropped > 0 || o_level <> Full then `Degraded
    else `Complete
  in
  ( results,
    {
      o_status;
      o_level;
      o_retries = !retries;
      o_restarts = !restarts;
      o_dropped = !o_dropped;
      o_errors = !o_errors;
    } )

let coverage n outcome =
  if n = 0 then 1.0 else float_of_int (n - outcome.o_dropped) /. float_of_int n
