(** Deterministic chaos harness for the resilient execution layer.

    A {e fault plan} is a finite list of faults with bounded fire
    budgets, injected into the domain pool through the
    {!Pool.For_testing} hooks.  Because every budget is finite, an
    armed process always quiesces: the supervisor's retry and heal
    machinery converges no matter the plan, which is what the chaos
    property suite asserts (see docs/ROBUSTNESS.md).

    Plans come from three places: handcrafted lists, {!plan_of_seed}
    (deterministic pseudo-random expansion of an integer seed), or the
    [RTLB_CHAOS] environment variable ({!parse} / {!arm_from_env}),
    e.g. [RTLB_CHAOS=spawnfail=2,raise@5x2,kill@11,slow@3:20000] or
    [RTLB_CHAOS=seed=42] or [RTLB_CHAOS=killckpt@2].

    Thread-safety: all harness state is atomics — the inject hook runs
    on pool worker domains.  Arming/disarming while a job is in flight
    is not supported (same contract as the hooks themselves). *)

exception Transient of int
(** The injected transient worker failure ([raise@i]); carries the
    work-item index that fired. *)

exception Killed
(** Raised by {!on_checkpoint} when a [killckpt@n] fault fires: an
    in-process stand-in for SIGKILL at the n-th checkpoint write.  The
    CLI maps it to an abrupt [exit 137]; tests catch it and exercise
    the resume path. *)

type fault =
  | Spawn_fail of int  (** Next [n] worker spawns fail (create or heal). *)
  | Raise_at of { index : int; times : int }
      (** Work item [index] raises {!Transient}, [times] times total. *)
  | Kill_worker_at of { index : int }
      (** Work item [index] kills its worker domain
          ({!Pool.Worker_abort}), once. *)
  | Slow_at of { index : int; spins : int }
      (** Work item [index] busy-spins before running — a straggler,
          not a failure. *)
  | Kill_at_checkpoint of int
      (** The [n]-th {!on_checkpoint} call raises {!Killed}. *)
  | Bad_frame_at of { index : int }
      (** Server-side: a chaos-aware client corrupts its [index]-th
          frame ({!frame_corrupt}), once — the daemon must answer with
          a structured error and keep serving. *)
  | Kill_request_at of { index : int }
      (** Server-side: the [index]-th admitted request kills its
          executing worker mid-compute ({!on_request} raises
          {!Pool.Worker_abort}), once — the supervisor's heal/degrade
          ladder must still produce the exact answer. *)
  | Slow_client_at of { index : int; ms : int }
      (** Server-side: a chaos-aware client stalls [ms] milliseconds
          mid-frame while sending its [index]-th request
          ({!client_delay_ms}) — a slow client, not a failure. *)
  | Tenant_flood_at of { index : int; burst : int }
      (** Server-side: a chaos-aware client fires [burst] extra
          back-to-back requests under one tenant at frame [index]
          ({!tenant_flood_burst}), once — with a quota armed, the
          daemon must shed the excess with [S307], never crash. *)
  | Kill_server_at of { index : int }
      (** Server-side: the whole server process [_exit]s abruptly when
          it is about to execute admitted request [index]
          ({!server_kill}), once — a real crash, not an exception.  The
          watchdog must restart it without dropping the endpoint, and
          failover clients must complete the storm with every
          acknowledged reply intact. *)
  | Journal_corrupt_at of { index : int }
      (** Server-side: the [index]-th warm-state journal append is
          followed by garbage bytes without a newline
          ({!journal_corrupt}), once — a torn tail the next journal
          open must detect and drop, never trust. *)

type plan = { seed : int; faults : fault list }

val plan_of_seed : int -> plan
(** Deterministic expansion of a seed into 1–3 faults (splitmix64
    driven); equal seeds give equal plans across runs and platforms. *)

val server_plan_of_seed : ?requests:int -> int -> plan
(** Deterministic expansion of a seed into 2–5 {e server-side} faults
    (bad frames, mid-request worker kills, slow clients, transient
    raises) with request indices below [requests] (default 32) — the
    plans the serve chaos suite replays against the daemon. *)

val parse : string -> (plan, string) result
(** The [RTLB_CHAOS] mini-language: comma-separated
    [spawnfail=N | raise@I | raise@IxN | kill@I | slow@I | slow@I:S |
    killckpt@N | badframe@I | killreq@I | slowclient@I | slowclient@I:MS
    | tenantflood@I | tenantflood@I:N | killserver@I | journalcorrupt@N
    | seed=N].  A lone [seed=N] expands via {!plan_of_seed}.  Integer
    payloads are strictly decimal; any other spelling — including OCaml
    literal forms like [0x3] or [1_0] — is rejected with an error
    naming the offending token, never silently reinterpreted. *)

val to_string : plan -> string
(** Round-trips through {!parse} (seed-only plans print as [seed=N]). *)

val arm : plan -> unit
(** Installs the plan into the pool's fault-injection hooks, replacing
    any armed plan and resetting the fired counters. *)

val disarm : unit -> unit
(** Clears the hooks and counters ({!Pool.For_testing.reset}). *)

val armed : unit -> plan option

val arm_from_env : unit -> (bool, string) result
(** Arms from [RTLB_CHAOS] when set ([Ok true]), does nothing when
    unset ([Ok false]); [Error] reports a malformed plan string. *)

val on_checkpoint : unit -> unit
(** Called by checkpoint writers after each durable write;
    @raise Killed when an armed [killckpt@n] budget hits zero. *)

val fired_transient : unit -> int
(** {!Transient} raises since the last {!arm} — the floor the chaos
    properties assert on the [retries] counter. *)

val fired_worker_kills : unit -> int

val fired_slow : unit -> int

(** {1 Server-side hooks}

    Consulted by the serve layer ({!on_request}) and by chaos-aware
    test clients ({!frame_corrupt}, {!client_delay_ms}).  Budgets are
    one shot per directive and atomic, so concurrent clients and
    server workers can replay one armed plan deterministically by
    request sequence number. *)

val on_request : int -> unit
(** Called by a server worker with the admitted-request sequence number
    before computing the reply;
    @raise Pool.Worker_abort when an armed [killreq@i] budget fires. *)

val frame_corrupt : int -> bool
(** [true] exactly once for the frame index of an armed [badframe@i] —
    the client should send a deliberately malformed frame instead. *)

val client_delay_ms : int -> int
(** The stall in milliseconds an armed [slowclient@i:MS] prescribes for
    frame [i] (once; [0] otherwise). *)

val tenant_flood_burst : int -> int
(** The number of extra same-tenant requests an armed [tenantflood@i:N]
    prescribes at frame [i] (once; [0] otherwise). *)

val server_kill : int -> bool
(** [true] exactly once for the admitted-request sequence number of an
    armed [killserver@i] — the server should [_exit] abruptly (its
    [die] hook), simulating a crash the watchdog must absorb. *)

val journal_corrupt : int -> bool
(** [true] exactly once for the append sequence number of an armed
    [journalcorrupt@n] — the journal garbles its own tail right after
    that append, exercising the corrupt-tail drop on the next open. *)

val fired_bad_frames : unit -> int

val fired_request_kills : unit -> int

val fired_client_delays : unit -> int

val fired_tenant_floods : unit -> int

val fired_server_kills : unit -> int

val fired_journal_corrupts : unit -> int
